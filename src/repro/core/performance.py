"""Analytical cycle and activity model of the GANAX accelerator.

GANAX executes conventional convolutions in pure SIMD mode with the same
row-stationary behaviour as the EYERISS baseline ("without compromising the
efficiency of conventional convolution accelerators"), so those layers reuse
the baseline estimate.  Transposed convolutions run in MIMD-SIMD mode with the
GANAX dataflow:

* only consequential multiply-adds occupy PE cycles (zero skipping via the
  strided µindex generators),
* the output/filter-row reorganization packs the consequential filter rows
  onto adjacent PEs, so the horizontal accumulation chain shrinks from the
  full kernel height to the number of consequential filter rows,
* the global controller pays a small MIMD dispatch overhead per group of
  µops, amortised by the ``repeat`` µop and the decoupled access engines, and
* DRAM traffic covers only genuine values — the zeros are never stored or
  streamed because the index generators skip them.

The model also caps the achievable utilization at
``ArchitectureConfig.ganax_target_utilization`` to reflect pipeline ramp-up,
edge windows and residual load imbalance (the paper reports roughly 90% PE
utilization rather than 100%).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..baseline.performance import (
    BaselineLayerEstimate,
    estimate_layer as baseline_estimate,
    gbuf_input_tiles,
)
from ..baseline.row_stationary import RowStationaryMapping, map_layer
from ..config import ArchitectureConfig
from ..errors import SimulationError
from ..hw.counters import EventCounters
from ..isa.encoding import GLOBAL_UOP_BITS
from ..nn.layers import TransposedConvLayer
from ..nn.network import LayerBinding
from .dataflow import DataflowSchedule, average_active_filter_rows, build_schedule


@dataclass(frozen=True)
class GanaxLayerEstimate:
    """Cycle and activity estimate of one layer on GANAX."""

    layer_name: str
    cycles: int
    compute_cycles: int
    accumulation_cycles: int
    dispatch_cycles: int
    dram_cycles: int
    active_pe_cycles: int
    busy_pe_cycles: int
    total_pe_cycles: int
    counters: EventCounters
    mode: str  # "simd" for conventional layers, "mimd-simd" for tconv


def estimate_layer(
    binding: LayerBinding,
    config: ArchitectureConfig,
    *,
    zero_skipping: bool = True,
) -> GanaxLayerEstimate:
    """Estimate cycles and activity of one layer on GANAX.

    ``zero_skipping=False`` models the ablated dense machine (the
    ``"ganax-noskip"`` registry entry): transposed convolutions execute the
    zero-inserted input with the conventional row-stationary dataflow while
    the global controller still pays the MIMD µop dispatch overhead.
    """
    layer = binding.layer
    if isinstance(layer, TransposedConvLayer):
        if not zero_skipping:
            return _estimate_dense_transposed_conv(binding, config)
        return _estimate_transposed_conv(binding, config)
    return _from_baseline(baseline_estimate(binding, config), mode="simd")


def _dispatch_overhead(
    schedule: DataflowSchedule, config: ArchitectureConfig
) -> Tuple[int, int, int]:
    """MIMD dispatch accounting shared by the skipping and dense tconv paths.

    One mimd.exe (plus its access configuration, amortised by the decoupled
    access engines) is charged per output row per pattern switch; the
    two-level µop buffer makes the dispatch a single-cycle broadcast.
    Returns ``(dispatch_events, dispatch_cycles, uop_fetches)`` — both
    execution modes must model the same dispatch tax, since their difference
    is exactly what the zero-skipping ablation isolates.
    """
    dispatch_events = schedule.output_rows * max(1, schedule.num_patterns)
    dispatch_cycles = math.ceil(
        dispatch_events * config.mimd_dispatch_overhead_cycles / max(1, config.num_pvs)
    )
    uop_fetches = dispatch_events * (1 + config.num_pvs)
    return dispatch_events, dispatch_cycles, uop_fetches


def _from_baseline(estimate: BaselineLayerEstimate, mode: str) -> GanaxLayerEstimate:
    """Wrap a baseline estimate: GANAX matches EYERISS on conventional layers."""
    return GanaxLayerEstimate(
        layer_name=estimate.layer_name,
        cycles=estimate.cycles,
        compute_cycles=estimate.compute_cycles,
        accumulation_cycles=estimate.accumulation_cycles,
        dispatch_cycles=0,
        dram_cycles=estimate.dram_cycles,
        active_pe_cycles=estimate.active_pe_cycles,
        busy_pe_cycles=estimate.busy_pe_cycles,
        total_pe_cycles=estimate.total_pe_cycles,
        counters=estimate.counters,
        mode=mode,
    )


def _estimate_transposed_conv(
    binding: LayerBinding, config: ArchitectureConfig
) -> GanaxLayerEstimate:
    layer = binding.layer
    assert isinstance(layer, TransposedConvLayer)
    schedule = build_schedule(binding)
    mapping = _reorganized_mapping(binding, schedule, config)

    peak = config.num_pes
    utilization_cap = config.ganax_target_utilization
    effective_throughput = peak * mapping.occupancy * utilization_cap
    if effective_throughput <= 0:
        raise SimulationError(f"{layer.name}: zero effective throughput")

    consequential = binding.consequential_macs
    output_elements = binding.output_shape.num_elements

    # --- compute -----------------------------------------------------------
    compute_cycles = math.ceil(consequential / effective_throughput)

    # --- horizontal accumulation -------------------------------------------
    # After the filter-row reorganization only the consequential filter rows
    # take part in the accumulation chain of each output row (2-3 hops instead
    # of the full kernel height in the paper's example).
    avg_active_rows = max(1.0, average_active_filter_rows(schedule))
    depth_taps = _depth_tap_factor(layer, binding)
    accumulation_hops = int(round(output_elements * avg_active_rows * depth_taps))
    accumulation_cycles = math.ceil(accumulation_hops / effective_throughput)

    # --- MIMD dispatch overhead ---------------------------------------------
    dispatch_events, dispatch_cycles, uop_fetches = _dispatch_overhead(
        schedule, config
    )

    # --- DRAM ---------------------------------------------------------------
    # Only genuine values are streamed: the zero insertion is performed
    # implicitly by the strided µindex generators, so the working set that
    # determines the weight re-streaming tile count is the genuine input.
    input_elements = binding.input_shape.num_elements
    weight_words = binding.weight_count
    output_words = output_elements
    weight_tiles = gbuf_input_tiles(input_elements, config)
    dram_read_words = input_elements + weight_words * weight_tiles
    dram_words = dram_read_words + output_words
    dram_bytes = dram_words * config.data_bytes
    dram_cycles = math.ceil(dram_bytes / config.dram_bandwidth_bytes_per_cycle)

    cycles = max(compute_cycles + accumulation_cycles + dispatch_cycles, dram_cycles)

    # --- activity counters ---------------------------------------------------
    counters = EventCounters()
    counters.mac_ops = consequential
    counters.gated_ops = 0
    counters.alu_ops = accumulation_hops
    counters.index_generations = 3 * consequential  # input, weight, output streams

    counters.register_file_reads = 2 * consequential
    counters.register_file_writes = consequential

    out_channels = binding.output_shape.channels
    m_parallel = max(1, mapping.sets_per_pass)
    m_passes = max(1, math.ceil(out_channels / m_parallel))
    gbuf_input_reads = input_elements * m_passes
    gbuf_weight_reads = weight_words * weight_tiles
    counters.global_buffer_reads = gbuf_input_reads + gbuf_weight_reads
    counters.global_buffer_writes = output_words

    counters.noc_transfers = gbuf_input_reads + gbuf_weight_reads + accumulation_hops

    counters.dram_reads = dram_read_words
    counters.dram_writes = output_words

    # µop fetches: one global fetch per dispatch event plus the local-buffer
    # fetches the PVs perform; both are tiny next to data traffic but are
    # counted for completeness (they appear in the RF/µop energy bucket).
    counters.uop_fetches = uop_fetches

    active_pe_cycles = consequential
    busy_pe_cycles = consequential + accumulation_hops
    total_pe_cycles = cycles * peak

    return GanaxLayerEstimate(
        layer_name=layer.name,
        cycles=cycles,
        compute_cycles=compute_cycles,
        accumulation_cycles=accumulation_cycles,
        dispatch_cycles=dispatch_cycles,
        dram_cycles=dram_cycles,
        active_pe_cycles=active_pe_cycles,
        busy_pe_cycles=busy_pe_cycles,
        total_pe_cycles=total_pe_cycles,
        counters=counters,
        mode="mimd-simd",
    )


def _estimate_dense_transposed_conv(
    binding: LayerBinding, config: ArchitectureConfig
) -> GanaxLayerEstimate:
    """Transposed convolution with zero skipping disabled (``ganax-noskip``).

    Without the strided µindex generators every inserted-zero slot occupies a
    PE cycle and the materialised zero-inserted input is streamed exactly as
    on the EYERISS baseline, so cycles, traffic and energy follow the
    baseline estimate.  The MIMD controller still issues one µop group per
    output row per access pattern, which is pure overhead here — the variant
    pays the GANAX dispatch tax without harvesting any sparsity.
    """
    base = baseline_estimate(binding, config)
    schedule = build_schedule(binding)
    _events, dispatch_cycles, uop_fetches = _dispatch_overhead(schedule, config)
    cycles = max(
        base.compute_cycles + base.accumulation_cycles + dispatch_cycles,
        base.dram_cycles,
    )
    counters = EventCounters.from_dict(base.counters.as_dict())
    counters.uop_fetches += uop_fetches
    return GanaxLayerEstimate(
        layer_name=binding.name,
        cycles=cycles,
        compute_cycles=base.compute_cycles,
        accumulation_cycles=base.accumulation_cycles,
        dispatch_cycles=dispatch_cycles,
        dram_cycles=base.dram_cycles,
        active_pe_cycles=base.active_pe_cycles,
        busy_pe_cycles=base.busy_pe_cycles,
        total_pe_cycles=cycles * config.num_pes,
        counters=counters,
        mode="mimd-simd-dense",
    )


def _reorganized_mapping(
    binding: LayerBinding, schedule: DataflowSchedule, config: ArchitectureConfig
) -> RowStationaryMapping:
    """Spatial mapping after the output/filter-row reorganization.

    The reorganization removes the idle compute nodes from every PE set: the
    logical set height shrinks from the kernel height to the average number of
    consequential filter rows, which lets more sets be replicated across the
    array and raises occupancy (Figure 5c).
    """
    base = map_layer(binding, config)
    avg_rows = max(1, int(round(average_active_filter_rows(schedule))))
    set_height = min(avg_rows, config.num_pvs)
    set_width = base.set_width
    sets_down = max(1, config.num_pvs // set_height)
    sets_across = max(1, config.pes_per_pv // set_width)
    sets_per_pass = sets_down * sets_across
    used = sets_per_pass * set_height * set_width
    occupancy = min(1.0, used / config.num_pes)
    return RowStationaryMapping(
        filter_rows=avg_rows,
        output_rows=base.output_rows,
        set_height=set_height,
        set_width=set_width,
        folds=base.folds,
        sets_per_pass=sets_per_pass,
        occupancy=occupancy,
    )


def _depth_tap_factor(layer: TransposedConvLayer, binding: LayerBinding) -> float:
    """Average consequential taps along the depth dimension of rank-3 layers.

    The 2-D schedule describes one depth slice; a voxel output element also
    accumulates across the consequential kernel planes, which multiplies the
    number of accumulation hops.  For rank-2 layers the factor is 1.
    """
    if layer.rank < 3:
        return 1.0
    taps = layer.consequential_taps_along_dim(binding.input_shape, 0)
    if not taps:
        return 1.0
    return max(1.0, sum(taps) / len(taps))
