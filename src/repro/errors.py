"""Exception hierarchy for the GANAX reproduction library.

All exceptions raised by :mod:`repro` derive from :class:`ReproError` so that
callers can catch library errors without masking programming mistakes such as
``TypeError`` from misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An architecture, energy, or area configuration is invalid."""


class ShapeError(ReproError):
    """A tensor / layer shape is inconsistent or unsupported."""


class LayerError(ReproError):
    """A layer specification is malformed (bad stride, kernel, channels...)."""


class NetworkError(ReproError):
    """A network definition is inconsistent (shape chain broken, empty...)."""


class WorkloadError(ReproError):
    """A named GAN workload could not be built or found."""


class UnknownWorkloadError(WorkloadError):
    """A workload spec string names no registered workload or family.

    Raised by :func:`repro.workloads.resolve_workload` and the CLI's
    ``--workloads`` parsing; the message lists every registered workload name
    and every family (with its spec grammar reachable via ``list-workloads``)
    so a typo is immediately actionable.
    """

    def __init__(
        self,
        name: str,
        registered: "tuple[str, ...]" = (),
        families: "tuple[str, ...]" = (),
    ) -> None:
        self.name = name
        self.registered = tuple(registered)
        self.families = tuple(families)
        known = ", ".join(self.registered) if self.registered else "none"
        message = f"unknown workload '{name}'; registered workloads: {known}"
        if self.families:
            message += (
                "; registered families (usable as '<family>@<args>'): "
                + ", ".join(self.families)
            )
        super().__init__(message)

    def __reduce__(self):
        # args holds the formatted message, not (name, registered, families);
        # without this, unpickling (e.g. from a process-pool worker) re-wraps
        # the message through __init__ and garbles it.
        return (type(self), (self.name, self.registered, self.families))


class IsaError(ReproError):
    """A micro-op is malformed, cannot be encoded, or cannot be decoded."""


class AssemblerError(IsaError):
    """The textual micro-op assembler rejected its input."""


class ProgramError(IsaError):
    """A micro-program is structurally invalid."""


class ProgramEncodingError(IsaError):
    """Encoding or decoding failed at a specific µop of a micro-program.

    Carries the program name, the offset of the offending µop (as a
    human-readable ``location`` like ``"global µop 12"`` or
    ``"PV 3 local µop 1"``) and the µop's repr, so an encode failure deep in a
    compiled program is clickable instead of anonymous."""

    def __init__(self, program: str, location: str, uop_repr: str, reason: str) -> None:
        self.program = program
        self.location = location
        self.uop_repr = uop_repr
        self.reason = reason
        super().__init__(f"program '{program}', {location} ({uop_repr}): {reason}")

    def __reduce__(self):
        # args holds the formatted message, not the four fields; without this,
        # unpickling re-wraps the message through __init__ and garbles it.
        return (type(self), (self.program, self.location, self.uop_repr, self.reason))


class HardwareError(ReproError):
    """A hardware primitive (FIFO, buffer, DRAM, NoC) was misused."""


class FifoError(HardwareError):
    """Push on a full FIFO or pop on an empty FIFO."""


class BufferError_(HardwareError):
    """Out-of-range access on a scratchpad or on-chip buffer."""


class SimulationError(ReproError):
    """The cycle-level machine or analytical simulator reached a bad state."""


class CompilationError(ReproError):
    """A layer could not be lowered to a GANAX micro-program."""


class DataflowError(ReproError):
    """The dataflow reorganization produced an inconsistent schedule."""


class ScheduleError(ReproError):
    """A schedule specification is malformed or cannot be applied."""


class UnknownScheduleError(ScheduleError):
    """A schedule spec string names no registered schedule or family.

    Raised by :func:`repro.schedule.resolve_schedule` and the CLI's
    ``--schedule`` parsing; the message lists every registered schedule name
    and every family (with its spec grammar reachable via ``list-schedules``)
    so a typo is immediately actionable.
    """

    def __init__(
        self,
        name: str,
        registered: "tuple[str, ...]" = (),
        families: "tuple[str, ...]" = (),
    ) -> None:
        self.name = name
        self.registered = tuple(registered)
        self.families = tuple(families)
        known = ", ".join(self.registered) if self.registered else "none"
        message = f"unknown schedule '{name}'; registered schedules: {known}"
        if self.families:
            message += (
                "; registered families (usable as '<family>@<args>'): "
                + ", ".join(self.families)
            )
        super().__init__(message)

    def __reduce__(self):
        # args holds the formatted message, not (name, registered, families);
        # without this, unpickling (e.g. from a process-pool worker) re-wraps
        # the message through __init__ and garbles it.
        return (type(self), (self.name, self.registered, self.families))


class AnalysisError(ReproError):
    """Metric or report computation failed (e.g. empty result set)."""


class UnknownAcceleratorError(AnalysisError):
    """An accelerator name is not in the registry.

    Raised by :func:`repro.accelerators.get_accelerator` and the CLI's
    ``--accelerators`` parsing; the message lists every registered name so a
    typo is immediately actionable.
    """

    def __init__(self, name: str, registered: "tuple[str, ...]" = ()) -> None:
        self.name = name
        self.registered = tuple(registered)
        known = ", ".join(self.registered) if self.registered else "none"
        super().__init__(
            f"unknown accelerator '{name}'; registered accelerators: {known}"
        )

    def __reduce__(self):
        # args holds the formatted message, not (name, registered); without
        # this, unpickling (e.g. from a process-pool worker) re-wraps the
        # message through __init__ and garbles it.
        return (type(self), (self.name, self.registered))


class ExperimentError(ReproError):
    """An experiment (figure/table reproduction) could not be executed."""


class ServiceError(ReproError):
    """The simulation service (server, client or journal) reached a bad state."""


class ProtocolError(ServiceError):
    """A wire or journal record is malformed or from an incompatible schema.

    Raised wherever a JSONL record crosses a trust boundary — the service
    handshake, per-request validation, client-side record parsing and journal
    replay — so schema drift fails loudly with an actionable message instead
    of silently misparsing."""


class AdmissionError(ServiceError):
    """A request was refused by the service's admission-control layer.

    Carries the machine-readable rejection ``code`` (``"quota"``,
    ``"queue-full"``, ``"shutting-down"``, ...) alongside the human-readable
    reason, mirroring the wire-level ``rejected`` record."""

    def __init__(self, code: str, reason: str) -> None:
        self.code = code
        self.reason = reason
        super().__init__(f"request rejected ({code}): {reason}")

    def __reduce__(self):
        # args holds the formatted message, not (code, reason); without this,
        # unpickling re-wraps the message through __init__ and garbles it.
        return (type(self), (self.code, self.reason))
