"""Registry and full-suite runner for the paper's tables and figures.

Every experiment module registers its ``run`` function under its experiment
id.  The CLI (``repro-experiments``) and the benchmark harness look
experiments up here, and :func:`run_all` regenerates the whole evaluation
section with one shared :class:`~repro.experiments.base.ExperimentContext`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ExperimentError
from ..runner import SimulationRunner
from . import (
    ablation,
    dse,
    figure1,
    figure8,
    figure9,
    figure10,
    figure11,
    headline,
    table1,
    table2,
    table3,
)
from .base import ExperimentContext, ExperimentResult, ExperimentRunner

#: Experiment id -> (title, runner), ordered as in the paper.
EXPERIMENTS: Dict[str, Tuple[str, ExperimentRunner]] = {
    headline.EXPERIMENT_ID: (headline.TITLE, headline.run),
    figure1.EXPERIMENT_ID: (figure1.TITLE, figure1.run),
    table1.EXPERIMENT_ID: (table1.TITLE, table1.run),
    table2.EXPERIMENT_ID: (table2.TITLE, table2.run),
    table3.EXPERIMENT_ID: (table3.TITLE, table3.run),
    figure8.EXPERIMENT_ID: (figure8.TITLE, figure8.run),
    figure9.EXPERIMENT_ID: (figure9.TITLE, figure9.run),
    figure10.EXPERIMENT_ID: (figure10.TITLE, figure10.run),
    figure11.EXPERIMENT_ID: (figure11.TITLE, figure11.run),
    ablation.EXPERIMENT_ID: (ablation.TITLE, ablation.run),
    dse.EXPERIMENT_ID: (dse.TITLE, dse.run),
}


def experiment_ids() -> Tuple[str, ...]:
    """All registered experiment ids, in paper order."""
    return tuple(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentRunner:
    """Look up one experiment's runner by id."""
    key = experiment_id.strip().lower()
    if key not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment '{experiment_id}'; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key][1]


def run_experiment(
    experiment_id: str, context: Optional[ExperimentContext] = None
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(context)


def run_all(
    context: Optional[ExperimentContext] = None,
    runner: Optional[SimulationRunner] = None,
) -> List[ExperimentResult]:
    """Run every experiment with a shared context (built once).

    When ``runner`` is given (and no explicit context), every experiment
    submits its simulations through it, sharing one result cache and — for a
    pooled backend — one worker pool across the whole evaluation section.
    """
    context = context or ExperimentContext(runner=runner)
    return [run_fn(context) for _title, run_fn in EXPERIMENTS.values()]
