"""Paper-reported values used as reference points in the experiment reports.

These numbers are read off the GANAX paper's text, tables and figures and are
used only for side-by-side comparison in the regenerated tables/figures and in
EXPERIMENTS.md; the reproduction's own results are computed from the models in
this library.  Figure values not stated numerically in the text are visual
estimates from the bar charts and are marked as approximate in the docstrings.
"""

from __future__ import annotations

from typing import Dict, Tuple

#: Canonical model ordering used by every figure in the paper.
MODEL_ORDER: Tuple[str, ...] = (
    "3D-GAN",
    "ArtGAN",
    "DCGAN",
    "DiscoGAN",
    "GP-GAN",
    "MAGAN",
)

#: Figure 8(a): speedup of the generative models over EYERISS.  The text
#: states the 3.6x geomean, the 6.1x maximum for 3D-GAN and the 1.3x minimum
#: for MAGAN; the remaining bars are visual estimates.
FIGURE8_SPEEDUP: Dict[str, float] = {
    "3D-GAN": 6.1,
    "ArtGAN": 4.0,
    "DCGAN": 4.7,
    "DiscoGAN": 2.7,
    "GP-GAN": 4.5,
    "MAGAN": 1.3,
    "Geomean": 3.6,
}

#: Figure 8(b): energy reduction of the generative models over EYERISS.  The
#: text states the 3.1x average and that 3D-GAN, DCGAN and GP-GAN exceed 4x.
FIGURE8_ENERGY_REDUCTION: Dict[str, float] = {
    "3D-GAN": 4.3,
    "ArtGAN": 3.0,
    "DCGAN": 4.1,
    "DiscoGAN": 2.1,
    "GP-GAN": 4.1,
    "MAGAN": 1.2,
    "Geomean": 3.1,
}

#: Figure 1: fraction of multiply-adds in transposed-convolution layers that
#: are inconsequential.  The text states the >60% average and ~80% for 3D-GAN;
#: per-model bars are visual estimates.
FIGURE1_INCONSEQUENTIAL_FRACTION: Dict[str, float] = {
    "3D-GAN": 0.80,
    "ArtGAN": 0.65,
    "DCGAN": 0.70,
    "DiscoGAN": 0.60,
    "GP-GAN": 0.70,
    "MAGAN": 0.45,
    "Average": 0.65,
}

#: Figure 11: PE utilization of the generative models.  The text states
#: "around 90%" for GANAX across all GANs; EYERISS bars are visual estimates.
FIGURE11_PE_UTILIZATION: Dict[str, Dict[str, float]] = {
    "eyeriss": {
        "3D-GAN": 0.20,
        "ArtGAN": 0.35,
        "DCGAN": 0.30,
        "DiscoGAN": 0.45,
        "GP-GAN": 0.30,
        "MAGAN": 0.55,
        "Average": 0.36,
    },
    "ganax": {
        "3D-GAN": 0.90,
        "ArtGAN": 0.90,
        "DCGAN": 0.90,
        "DiscoGAN": 0.90,
        "GP-GAN": 0.90,
        "MAGAN": 0.90,
        "Average": 0.90,
    },
}

#: Table I: layer counts per model as printed in the paper.
TABLE1_LAYER_COUNTS: Dict[str, Dict[str, int]] = {
    "3D-GAN": {
        "generator_conv": 0, "generator_tconv": 4,
        "discriminator_conv": 5, "discriminator_tconv": 0,
    },
    "ArtGAN": {
        "generator_conv": 0, "generator_tconv": 5,
        "discriminator_conv": 6, "discriminator_tconv": 0,
    },
    "DCGAN": {
        "generator_conv": 0, "generator_tconv": 4,
        "discriminator_conv": 5, "discriminator_tconv": 0,
    },
    "DiscoGAN": {
        "generator_conv": 5, "generator_tconv": 4,
        "discriminator_conv": 5, "discriminator_tconv": 0,
    },
    "GP-GAN": {
        "generator_conv": 0, "generator_tconv": 4,
        "discriminator_conv": 5, "discriminator_tconv": 0,
    },
    "MAGAN": {
        "generator_conv": 0, "generator_tconv": 6,
        "discriminator_conv": 6, "discriminator_tconv": 6,
    },
}

#: Table I: release year and application description per model.
TABLE1_DESCRIPTIONS: Dict[str, Tuple[int, str]] = {
    "3D-GAN": (2016, "3D objects generation"),
    "ArtGAN": (2017, "Complex artworks generation"),
    "DCGAN": (2015, "Unsupervised representation learning"),
    "DiscoGAN": (2017, "Style transfer from one domain to another"),
    "GP-GAN": (2017, "High-resolution image generation"),
    "MAGAN": (2017, "Stable training procedure for GANs"),
}

#: Table II: energy per bit (pJ) and the relative-cost column.
TABLE2_ENERGY: Dict[str, Tuple[float, float]] = {
    "Register File Access": (0.20, 1.0),
    "16-bit Fixed Point PE": (0.36, 1.8),
    "Inter-PE Communication": (0.40, 2.0),
    "Global Buffer Access": (1.20, 6.0),
    "DDR4 Memory Access": (15.00, 75.0),
}

#: Table III headline results.
TABLE3_PE_AREA_UM2: float = 29471.6
TABLE3_TOTAL_AREA_UM2: float = 9066211.8
TABLE3_AREA_OVERHEAD: float = 0.078

#: Headline averages quoted in the abstract / conclusion.
HEADLINE_SPEEDUP: float = 3.6
HEADLINE_ENERGY_REDUCTION: float = 3.1
HEADLINE_AREA_OVERHEAD: float = 0.078
HEADLINE_GANAX_UTILIZATION: float = 0.90
