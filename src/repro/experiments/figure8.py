"""Figure 8: speedup and energy reduction of generative models vs EYERISS.

Figure 8(a) reports the per-GAN speedup of the generative models on GANAX
over the EYERISS baseline (3.6x geomean; 6.1x for 3D-GAN, 1.3x for MAGAN) and
Figure 8(b) the corresponding energy reduction (3.1x average).  This
experiment runs both analytical simulators over every workload's generator
and reports the same series.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.charts import ratio_chart
from ..analysis.metrics import ratio_summary
from ..analysis.report import format_ratio_series
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import FIGURE8_ENERGY_REDUCTION, FIGURE8_SPEEDUP

EXPERIMENT_ID = "figure8"
TITLE = "Figure 8: Speedup and energy reduction of generative models vs EYERISS"


def compute_speedups(context: Optional[ExperimentContext] = None) -> Dict[str, float]:
    """Per-model generator speedup (Figure 8a)."""
    context = ensure_context(context)
    return {
        name: comparison.generator_speedup
        for name, comparison in context.comparisons.items()
    }


def compute_energy_reductions(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, float]:
    """Per-model generator energy reduction (Figure 8b)."""
    context = ensure_context(context)
    return {
        name: comparison.generator_energy_reduction
        for name, comparison in context.comparisons.items()
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Figure 8 (both panels)."""
    context = ensure_context(context)
    speedups = ratio_summary(compute_speedups(context))
    reductions = ratio_summary(compute_energy_reductions(context))
    report = "\n\n".join(
        [
            format_ratio_series(
                "Figure 8(a): Speedup over EYERISS", speedups, reference=FIGURE8_SPEEDUP
            ),
            ratio_chart(
                "Figure 8(a) as bars (| marks the paper's value)",
                speedups,
                reference=FIGURE8_SPEEDUP,
            ),
            format_ratio_series(
                "Figure 8(b): Energy reduction over EYERISS",
                reductions,
                reference=FIGURE8_ENERGY_REDUCTION,
            ),
            ratio_chart(
                "Figure 8(b) as bars (| marks the paper's value)",
                reductions,
                reference=FIGURE8_ENERGY_REDUCTION,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"speedup": speedups, "energy_reduction": reductions},
        paper_reference={
            "speedup": dict(FIGURE8_SPEEDUP),
            "energy_reduction": dict(FIGURE8_ENERGY_REDUCTION),
        },
        report=report,
    )
