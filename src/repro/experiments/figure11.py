"""Figure 11: PE utilization of generative models on EYERISS and GANAX.

The paper measures the percentage of the total runtime during which the PEs
actively perform a consequential operation; GANAX reaches roughly 90% across
all evaluated GANs because the reorganized dataflow packs consequential work
onto adjacent PEs, while the baseline wastes cycles on inserted zeros.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.charts import fraction_chart
from ..analysis.metrics import fraction_summary
from ..analysis.report import format_fraction_series
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import FIGURE11_PE_UTILIZATION

EXPERIMENT_ID = "figure11"
TITLE = "Figure 11: PE utilization of generative models"


def compute_utilizations(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-accelerator, per-model PE utilization of the generators."""
    context = ensure_context(context)
    eyeriss = {
        name: comparison.eyeriss_generator_utilization
        for name, comparison in context.comparisons.items()
    }
    ganax = {
        name: comparison.ganax_generator_utilization
        for name, comparison in context.comparisons.items()
    }
    return {"eyeriss": eyeriss, "ganax": ganax}


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Figure 11."""
    context = ensure_context(context)
    utilizations = compute_utilizations(context)
    eyeriss = fraction_summary(utilizations["eyeriss"])
    ganax = fraction_summary(utilizations["ganax"])
    report = "\n\n".join(
        [
            format_fraction_series(
                "Figure 11 (EYERISS): PE utilization",
                eyeriss,
                reference=FIGURE11_PE_UTILIZATION["eyeriss"],
            ),
            format_fraction_series(
                "Figure 11 (GANAX): PE utilization",
                ganax,
                reference=FIGURE11_PE_UTILIZATION["ganax"],
            ),
            fraction_chart(
                "Figure 11 (GANAX) as bars (| marks the paper's ~90%)",
                ganax,
                reference=FIGURE11_PE_UTILIZATION["ganax"],
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"pe_utilization": {"eyeriss": eyeriss, "ganax": ganax}},
        paper_reference={"pe_utilization": FIGURE11_PE_UTILIZATION},
        report=report,
    )
