"""Figure 1: fraction of inconsequential multiply-adds in TConv layers.

The paper motivates GANAX by showing that, across the six evaluated GANs, more
than 60% of the multiply-add operations of the generative models' transposed
convolution layers are inconsequential because one operand is an inserted
zero, with 3D-GAN around 80%.  This experiment recomputes the fraction from
the structural zero analysis of each workload's generator.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.charts import fraction_chart
from ..analysis.metrics import fraction_summary
from ..analysis.report import format_fraction_series
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import FIGURE1_INCONSEQUENTIAL_FRACTION

EXPERIMENT_ID = "figure1"
TITLE = "Figure 1: Inconsequential operations in transposed-convolution layers"


def compute_fractions(context: Optional[ExperimentContext] = None) -> Dict[str, float]:
    """Per-model inconsequential fraction over generator TConv layers."""
    context = ensure_context(context)
    return {
        model.name: model.generator_tconv_inconsequential_fraction()
        for model in context.models
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Figure 1."""
    context = ensure_context(context)
    fractions = fraction_summary(compute_fractions(context))
    report = "\n\n".join(
        [
            format_fraction_series(
                TITLE, fractions, reference=FIGURE1_INCONSEQUENTIAL_FRACTION
            ),
            fraction_chart(
                "Figure 1 as bars (| marks the paper's value)",
                fractions,
                reference=FIGURE1_INCONSEQUENTIAL_FRACTION,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"inconsequential_fraction": fractions},
        paper_reference={"inconsequential_fraction": dict(FIGURE1_INCONSEQUENTIAL_FRACTION)},
        report=report,
    )
