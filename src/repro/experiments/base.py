"""Shared infrastructure for the experiment modules.

Every experiment (one per paper table/figure) implements the same small
protocol: a ``run`` function that returns an :class:`ExperimentResult` holding
the computed data, the paper's reference data where available, and a rendered
plain-text report.  The registry in :mod:`repro.experiments.registry` exposes
them by experiment id (``"figure1"``, ``"table3"``, ...), which the CLI and
the benchmark harness use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Union

from ..analysis.results import ComparisonResult, MultiComparison
from ..config import ArchitectureConfig, SimulationOptions
from ..errors import ExperimentError, WorkloadError
from ..nn.network import GANModel
from ..runner import SimulationRunner, get_default_runner
from ..session import Session
from ..workloads.registry import all_workloads, get_workload, resolve_workload


@dataclass(frozen=True)
class ExperimentResult:
    """The outcome of regenerating one table or figure.

    Attributes
    ----------
    experiment_id:
        Short id matching the paper artefact (e.g. ``"figure8a"``).
    title:
        Human-readable title.
    data:
        The computed values in a JSON-friendly nested dict structure.
    paper_reference:
        The corresponding paper-reported values (same structure where
        possible); empty when the paper gives no directly comparable numbers.
    report:
        A rendered plain-text table for printing.
    """

    experiment_id: str
    title: str
    data: Dict[str, Any]
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    report: str = ""

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExperimentError("experiment_id must be non-empty")
        if not self.title:
            raise ExperimentError("title must be non-empty")


class ExperimentContext:
    """Lazily-built shared state for experiments (models + comparisons).

    Building the six GAN models and running both simulators over all of them
    takes a couple of hundred milliseconds; experiments that need the same
    comparisons share them through a context so the full-suite runner and the
    benchmarks do the work once.

    Every simulation an experiment triggers goes through the context's
    :class:`~repro.runner.SimulationRunner` (the process-wide default one
    unless an explicit runner is passed), so the whole experiment suite —
    headline comparisons, figures, tables and ablation sweeps — shares one
    content-addressed result cache and, when the runner is configured with a
    :class:`~repro.runner.ProcessPoolBackend`, one parallel pool.
    """

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
        models: Optional[Sequence[Union[str, GANModel]]] = None,
        runner: Optional[SimulationRunner] = None,
        accelerators: Optional[Sequence[str]] = None,
        progress: Optional[Callable[..., None]] = None,
    ) -> None:
        self._config = config or ArchitectureConfig.paper_default()
        self._options = options or SimulationOptions()
        # Workload names and family spec strings resolve through the
        # registry, so a context can scope the whole experiment suite to
        # e.g. ("dcgan@32x32", "synthetic@d8c256").
        self._models = (
            [get_workload(m) if isinstance(m, str) else m for m in models]
            if models is not None
            else None
        )
        self._runner = runner
        self._accelerators = tuple(accelerators) if accelerators is not None else None
        self._progress = progress
        self._detach_progress: Optional[Callable[[], None]] = None
        self._session: Optional[Session] = None
        self._comparisons: Optional[Dict[str, ComparisonResult]] = None
        self._multi_comparisons: Optional[Dict[str, MultiComparison]] = None

    @property
    def config(self) -> ArchitectureConfig:
        return self._config

    @property
    def options(self) -> SimulationOptions:
        return self._options

    @property
    def runner(self) -> SimulationRunner:
        """The runner every experiment in this context submits through.

        When the context carries a ``progress`` hook it is subscribed to the
        runner's :class:`~repro.runner.RunnerEvent` stream on first access,
        so every simulation any experiment triggers — headline comparisons,
        figures, tables, ablation sweeps — reports live per-job progress.
        """
        if self._runner is None:
            self._runner = get_default_runner()
        if self._progress is not None and self._detach_progress is None:
            self._detach_progress = self._runner.subscribe(self._progress)
        return self._runner

    def detach_progress(self) -> None:
        """Unsubscribe the progress hook from the runner (idempotent).

        Call this when the context is done if the runner outlives it (the
        process-wide default runner does); otherwise the hook keeps firing
        for unrelated work submitted through the same runner.
        """
        if self._detach_progress is not None:
            self._detach_progress()
            self._detach_progress = None
        self._progress = None  # a later runner access must not re-subscribe

    @property
    def models(self) -> Sequence[GANModel]:
        if self._models is None:
            self._models = all_workloads()
        return self._models

    @property
    def session(self) -> Session:
        """N-way comparison facade sharing this context's config and runner.

        Built over the context's ``accelerators`` (the registry-default
        EYERISS/GANAX pair unless the context was constructed with an
        explicit list), so experiments that want more than the paper's
        two-point comparison route through the same runner and cache.
        """
        if self._session is None:
            self._session = Session(
                accelerators=self._accelerators,
                config=self._config,
                options=self._options,
                runner=self.runner,
            )
        return self._session

    @property
    def comparisons(self) -> Dict[str, ComparisonResult]:
        """GANAX-vs-EYERISS comparison per model, computed once.

        The legacy ``("eyeriss", "ganax")`` view the paper's figures
        consume; N-way studies use :attr:`multi_comparisons`.
        """
        if self._comparisons is None:
            self._comparisons = self.runner.compare_models(
                self.models, self._config, self._options
            )
        return self._comparisons

    @property
    def multi_comparisons(self) -> Dict[str, MultiComparison]:
        """Per-model comparison across the context's accelerators."""
        if self._multi_comparisons is None:
            self._multi_comparisons = self.session.compare(self.models)
        return self._multi_comparisons

    def model(self, name: str) -> GANModel:
        """A context model by name (registry aliases and spec strings work)."""
        try:
            canonical = resolve_workload(name).name
        except WorkloadError:
            canonical = name
        for model in self.models:
            if model.name in (name, canonical):
                return model
        raise ExperimentError(f"no model named '{name}' in this context")


#: Signature every experiment module's ``run`` function follows.
ExperimentRunner = Callable[[Optional[ExperimentContext]], ExperimentResult]


def ensure_context(context: Optional[ExperimentContext]) -> ExperimentContext:
    """Return the given context or a fresh default one."""
    return context if context is not None else ExperimentContext()
