"""Figure 10: energy breakdown of generative models by microarchitectural unit.

Figure 10 splits the generative models' energy between the PE datapath, the
register files, the NoC, the global buffer and DRAM, normalised to the
EYERISS total, and shows that GANAX reduces every component.  This experiment
reports the same stacked series from the activity counters of both simulators.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.breakdown import average_breakdown, unit_energy_breakdown
from ..analysis.report import format_stacked_breakdown
from ..hw.energy import ENERGY_COMPONENTS
from .base import ExperimentContext, ExperimentResult, ensure_context

EXPERIMENT_ID = "figure10"
TITLE = "Figure 10: Generator energy breakdown by microarchitectural unit"


def compute_unit_breakdowns(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-model, per-accelerator, per-unit energy normalised to EYERISS."""
    context = ensure_context(context)
    return {
        name: unit_energy_breakdown(comparison)
        for name, comparison in context.comparisons.items()
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Figure 10."""
    context = ensure_context(context)
    breakdowns = compute_unit_breakdowns(context)
    with_average = dict(breakdowns)
    with_average["Average"] = average_breakdown(breakdowns)
    report = format_stacked_breakdown(
        "Figure 10: Normalized generator energy by unit (EYERISS total = 1.0)",
        with_average,
        ENERGY_COMPONENTS,
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"unit_energy": with_average},
        paper_reference={},
        report=report,
    )
