"""Headline claims: the abstract/conclusion numbers in one view.

The paper's abstract summarises the evaluation with four numbers: 3.6x average
speedup, 3.1x average energy savings over EYERISS, roughly 7.8% area increase,
and no efficiency loss on conventional convolution (discriminators).  This
experiment gathers the reproduction's values for the same four claims plus the
~90% PE utilization headline, so a reader can check the whole story at a
glance before drilling into the per-figure experiments.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.metrics import arithmetic_mean, geometric_mean
from ..analysis.report import format_table
from ..hw.area import AreaModel
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import (
    HEADLINE_AREA_OVERHEAD,
    HEADLINE_ENERGY_REDUCTION,
    HEADLINE_GANAX_UTILIZATION,
    HEADLINE_SPEEDUP,
)

EXPERIMENT_ID = "headline"
TITLE = "Headline claims: abstract-level summary of the reproduction"


def compute_headline(context: Optional[ExperimentContext] = None) -> Dict[str, float]:
    """The reproduction's values for the paper's headline claims."""
    context = ensure_context(context)
    comparisons = context.comparisons
    speedups = [c.generator_speedup for c in comparisons.values()]
    reductions = [c.generator_energy_reduction for c in comparisons.values()]
    utilizations = [c.ganax_generator_utilization for c in comparisons.values()]

    # "Without compromising the efficiency of conventional convolution
    # accelerators": the largest relative discriminator slowdown across models.
    discriminator_penalty = 0.0
    for comparison in comparisons.values():
        eyeriss = comparison.eyeriss.discriminator
        ganax = comparison.ganax.discriminator
        if eyeriss is None or ganax is None or eyeriss.cycles == 0:
            continue
        penalty = ganax.cycles / eyeriss.cycles - 1.0
        discriminator_penalty = max(discriminator_penalty, penalty)

    area = AreaModel(num_pes=context.config.num_pes)
    return {
        "geomean_speedup": geometric_mean(speedups),
        "geomean_energy_reduction": geometric_mean(reductions),
        "mean_ganax_utilization": arithmetic_mean(utilizations),
        "area_overhead_fraction": area.ganax_overhead_fraction(),
        "worst_discriminator_penalty": discriminator_penalty,
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Summarise the headline claims against the paper."""
    context = ensure_context(context)
    measured = compute_headline(context)
    rows = [
        ["Generator speedup over EYERISS (geomean)", f"{HEADLINE_SPEEDUP:.1f}x",
         f"{measured['geomean_speedup']:.2f}x"],
        ["Generator energy reduction (average)", f"{HEADLINE_ENERGY_REDUCTION:.1f}x",
         f"{measured['geomean_energy_reduction']:.2f}x"],
        ["GANAX PE utilization", f"~{100 * HEADLINE_GANAX_UTILIZATION:.0f}%",
         f"{100 * measured['mean_ganax_utilization']:.0f}%"],
        ["Area overhead over EYERISS", f"~{100 * HEADLINE_AREA_OVERHEAD:.1f}%",
         f"{100 * measured['area_overhead_fraction']:.1f}%"],
        ["Discriminator (conventional conv) slowdown", "none",
         f"{100 * measured['worst_discriminator_penalty']:.2f}%"],
    ]
    report = format_table(["Claim", "Paper", "Measured"], rows, title=TITLE)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data=measured,
        paper_reference={
            "geomean_speedup": HEADLINE_SPEEDUP,
            "geomean_energy_reduction": HEADLINE_ENERGY_REDUCTION,
            "mean_ganax_utilization": HEADLINE_GANAX_UTILIZATION,
            "area_overhead_fraction": HEADLINE_AREA_OVERHEAD,
            "worst_discriminator_penalty": 0.0,
        },
        report=report,
    )
