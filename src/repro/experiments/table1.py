"""Table I: the evaluated GAN models and their layer counts.

Table I lists each evaluated GAN with its release year, a one-line
description, and the number of convolution / transposed-convolution layers in
its generative and discriminative models.  This experiment recomputes the
layer counts from the workload definitions and checks them against the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import format_table
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import TABLE1_DESCRIPTIONS, TABLE1_LAYER_COUNTS

EXPERIMENT_ID = "table1"
TITLE = "Table I: Evaluated GAN models and layer counts"


def compute_layer_counts(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, int]]:
    """Conv/TConv layer counts per model, per sub-network."""
    context = ensure_context(context)
    return {model.name: model.layer_counts() for model in context.models}


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Table I."""
    context = ensure_context(context)
    counts = compute_layer_counts(context)
    headers = [
        "Name",
        "Year",
        "Gen Conv",
        "Gen TConv",
        "Disc Conv",
        "Disc TConv",
        "Matches paper",
        "Description",
    ]
    rows = []
    for model in context.models:
        c = counts[model.name]
        year, description = TABLE1_DESCRIPTIONS.get(model.name, (model.year, model.description))
        matches = TABLE1_LAYER_COUNTS.get(model.name) == c
        rows.append(
            [
                model.name,
                year,
                c["generator_conv"],
                c["generator_tconv"],
                c["discriminator_conv"],
                c["discriminator_tconv"],
                matches,
                description,
            ]
        )
    report = format_table(headers, rows, title=TITLE)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"layer_counts": counts},
        paper_reference={"layer_counts": TABLE1_LAYER_COUNTS},
        report=report,
    )
