"""Table II: energy costs of the microarchitectural units and memories.

Table II lists the per-bit energy of the major structures (register file, PE,
inter-PE link, global buffer, DRAM) in TSMC 45 nm together with their cost
relative to a register-file access.  These numbers are *inputs* to the
reproduction's energy model; the experiment renders the configured table and
verifies it matches the paper's values, so any change to the energy model
defaults is immediately visible.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..analysis.report import format_table
from ..hw.energy import EnergyTable
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import TABLE2_ENERGY

EXPERIMENT_ID = "table2"
TITLE = "Table II: Energy comparison of microarchitectural units and memory"


def compute_energy_rows(
    table: EnergyTable | None = None,
) -> Dict[str, Tuple[float, float]]:
    """(pJ/bit, relative cost) per structure from the configured energy table."""
    table = table or EnergyTable.paper_table2()
    relative = table.relative_costs()
    absolute = {
        "Register File Access": table.register_file_pj_per_bit,
        "16-bit Fixed Point PE": table.pe_pj_per_bit,
        "Inter-PE Communication": table.inter_pe_pj_per_bit,
        "Global Buffer Access": table.global_buffer_pj_per_bit,
        "DDR4 Memory Access": table.dram_pj_per_bit,
    }
    return {name: (absolute[name], relative[name]) for name in absolute}


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Table II."""
    ensure_context(context)
    rows_data = compute_energy_rows()
    headers = ["Operation", "Energy (pJ/bit)", "Relative Cost", "Paper (pJ/bit)", "Matches"]
    rows = []
    for name, (energy, relative) in rows_data.items():
        paper_energy, _paper_relative = TABLE2_ENERGY[name]
        rows.append([name, energy, relative, paper_energy, abs(energy - paper_energy) < 1e-9])
    report = format_table(headers, rows, title=TITLE, float_format="{:.2f}")
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"energy_table": {k: {"pj_per_bit": v[0], "relative": v[1]} for k, v in rows_data.items()}},
        paper_reference={"energy_table": {k: {"pj_per_bit": v[0], "relative": v[1]} for k, v in TABLE2_ENERGY.items()}},
        report=report,
    )
