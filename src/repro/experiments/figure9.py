"""Figure 9: runtime and energy breakdown, discriminative vs generative.

Figure 9 normalises each GAN's total runtime (a) and energy (b) to the
EYERISS value and splits it between the discriminative and generative models,
showing that GANAX shrinks the generative share while delivering the same
efficiency as EYERISS on the discriminative share.  For MAGAN only the
discriminator's convolution layers are counted, matching the paper.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.breakdown import (
    FIGURE9_SEGMENTS,
    average_breakdown,
    energy_breakdown,
    runtime_breakdown,
)
from ..analysis.report import format_stacked_breakdown
from .base import ExperimentContext, ExperimentResult, ensure_context

EXPERIMENT_ID = "figure9"
TITLE = "Figure 9: Runtime and energy breakdown (discriminative vs generative)"


def compute_runtime_breakdowns(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-model normalised runtime split (Figure 9a)."""
    context = ensure_context(context)
    return {
        name: runtime_breakdown(comparison)
        for name, comparison in context.comparisons.items()
    }


def compute_energy_breakdowns(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-model normalised energy split (Figure 9b)."""
    context = ensure_context(context)
    return {
        name: energy_breakdown(comparison)
        for name, comparison in context.comparisons.items()
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Figure 9 (both panels)."""
    context = ensure_context(context)
    runtime = compute_runtime_breakdowns(context)
    energy = compute_energy_breakdowns(context)
    runtime_with_avg = dict(runtime)
    runtime_with_avg["Average"] = average_breakdown(runtime)
    energy_with_avg = dict(energy)
    energy_with_avg["Average"] = average_breakdown(energy)

    report = "\n\n".join(
        [
            format_stacked_breakdown(
                "Figure 9(a): Normalized runtime (EYERISS total = 1.0)",
                runtime_with_avg,
                FIGURE9_SEGMENTS,
            ),
            format_stacked_breakdown(
                "Figure 9(b): Normalized energy (EYERISS total = 1.0)",
                energy_with_avg,
                FIGURE9_SEGMENTS,
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={"runtime": runtime_with_avg, "energy": energy_with_avg},
        paper_reference={},
        report=report,
    )
