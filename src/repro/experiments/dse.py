"""Design-space exploration experiment: Pareto frontier around the paper point.

The paper evaluates exactly one GANAX configuration — 16 PVs x 16 PEs at the
Table III memory sizes — and compares it against an EYERISS baseline of the
same geometry.  This experiment asks the question the paper leaves open: where
does that point sit in the surrounding design space?  It exhaustively
evaluates a small grid over the PE-array geometry (the two fields every
registered GANAX model reacts to), simulating all six GANs on both GANAX and
EYERISS at every grid point through the shared runner, and reports the Pareto
frontier over speedup (max), total generator energy (min) and area (min).

The grid deliberately contains the paper's own 16x16 geometry, so the summary
also records whether the published design point is Pareto-optimal within the
searched neighbourhood.  Under the default analytical models it narrowly is
*not*: the 32x8 geometry has the same PE count (hence the same area, and the
same modelled speedup) but slightly lower modelled energy, its row-major
mapping wasting marginally less work — exactly the kind of second-order
observation a frontier surfaces and a single-point evaluation cannot.
"""

from __future__ import annotations

from typing import Optional

from ..dse.engine import DesignSpaceExplorer
from ..dse.strategies import ExhaustiveSearch
from .base import ExperimentContext, ExperimentResult, ensure_context

EXPERIMENT_ID = "dse"
TITLE = "Design-space exploration: GANAX Pareto frontier vs EYERISS"

#: The explored PE-array geometry grid; includes the paper's 16x16 point.
GRID = {"num_pvs": (8, 16, 32), "pes_per_pv": (8, 16)}


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Exhaustively explore the geometry grid and report the frontier."""
    context = ensure_context(context)
    explorer = DesignSpaceExplorer(
        accelerator="ganax",
        baseline="eyeriss",
        models=context.models,
        base_config=context.config,
        options=context.options,
        runner=context.runner,
    )
    space = explorer.space(fields=tuple(GRID), overrides=GRID)
    result = explorer.explore(space=space, strategy=ExhaustiveSearch())

    paper_point = next(
        (
            p
            for p in result.evaluated
            if p.point.values
            == {"num_pvs": context.config.num_pvs,
                "pes_per_pv": context.config.pes_per_pv}
        ),
        None,
    )
    data = result.summary()
    data["paper_point_on_frontier"] = (
        paper_point is not None and result.frontier.is_on_frontier(paper_point)
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data=data,
        paper_reference={
            # The paper picks one point rather than reporting a frontier; the
            # comparable claim is that its 16x16 geometry is a good design.
            "evaluated_geometry": {"num_pvs": 16, "pes_per_pv": 16},
        },
        report=result.report(title=TITLE),
    )
