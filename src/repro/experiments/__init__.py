"""Experiment harness: one module per paper table/figure plus ablations."""

from .base import ExperimentContext, ExperimentResult
from .registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_all,
    run_experiment,
)

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "run_all",
    "run_experiment",
]
