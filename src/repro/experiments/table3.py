"""Table III: area of the major hardware units and the GANAX overhead.

Table III reports the synthesised area of every unit inside a GANAX PE, the
full 16x16 PE array, and the top-level structures, and states that GANAX adds
roughly 7.8% area over an EYERISS baseline with the same PE count and on-chip
memory.  This experiment regenerates the table from the area model and
recomputes the overhead.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.report import format_key_values, format_table
from ..hw.area import AreaModel
from .base import ExperimentContext, ExperimentResult, ensure_context
from .paper_data import (
    TABLE3_AREA_OVERHEAD,
    TABLE3_PE_AREA_UM2,
    TABLE3_TOTAL_AREA_UM2,
)

EXPERIMENT_ID = "table3"
TITLE = "Table III: Area of the major hardware units (TSMC 45 nm)"


def compute_area(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, float]:
    """Headline area quantities from the area model."""
    context = ensure_context(context)
    model = AreaModel(num_pes=context.config.num_pes)
    return {
        "pe_area_um2": model.pe_area.total,
        "pe_array_area_um2": model.pe_array_area_um2(ganax=True),
        "ganax_total_area_um2": model.total_area_um2(ganax=True),
        "eyeriss_total_area_um2": model.total_area_um2(ganax=False),
        "area_overhead_fraction": model.ganax_overhead_fraction(),
    }


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Regenerate Table III."""
    context = ensure_context(context)
    model = AreaModel(num_pes=context.config.num_pes)
    rows = [
        [name, area, 100.0 * fraction]
        for name, area, fraction in model.table3_rows()
    ]
    table = format_table(
        ["Hardware Unit", "Area (um^2)", "Share (%)"],
        rows,
        title=TITLE,
        float_format="{:.1f}",
    )
    headline = compute_area(context)
    summary = format_key_values(
        "GANAX vs EYERISS area",
        {
            "GANAX total area (mm^2)": f"{headline['ganax_total_area_um2'] * 1e-6:.3f}",
            "EYERISS total area (mm^2)": f"{headline['eyeriss_total_area_um2'] * 1e-6:.3f}",
            "Area overhead": f"{100.0 * headline['area_overhead_fraction']:.1f}%",
            "Paper PE area (um^2)": TABLE3_PE_AREA_UM2,
            "Paper total area (um^2)": TABLE3_TOTAL_AREA_UM2,
            "Paper overhead": f"{100.0 * TABLE3_AREA_OVERHEAD:.1f}%",
        },
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data=headline,
        paper_reference={
            "pe_area_um2": TABLE3_PE_AREA_UM2,
            "ganax_total_area_um2": TABLE3_TOTAL_AREA_UM2,
            "area_overhead_fraction": TABLE3_AREA_OVERHEAD,
        },
        report=table + "\n\n" + summary,
    )
