"""Ablation studies of the GANAX design choices.

The paper motivates three design decisions whose effect this experiment
isolates on identical hardware:

* **Zero skipping via the reorganized dataflow** — without it, the transposed
  convolutions execute densely over the zero-inserted input (this is exactly
  the EYERISS baseline), so the ablation is the baseline itself.
* **Filter-row reorganization** — without it the accumulation chain of every
  output row spans the full kernel height instead of only the consequential
  filter rows; modelled by forcing the accumulation depth to the kernel
  height.
* **Decoupled access-execute / two-level µop buffers** — without them every
  PE needs a private full-size operation buffer and the MIMD dispatch
  overhead is paid per operation instead of being amortised; modelled by
  scaling the MIMD dispatch overhead.

Each ablation reports the geomean generator speedup over EYERISS so the
contribution of every mechanism is visible, plus a DRAM-bandwidth sweep that
shows where the roofline starts to hide the dataflow benefit.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..analysis.report import format_table
from ..analysis.sweep import ParameterSweep
from ..config import ArchitectureConfig
from .base import ExperimentContext, ExperimentResult, ensure_context

EXPERIMENT_ID = "ablation"
TITLE = "Ablation: contribution of the GANAX design choices"

#: DRAM bandwidth values (bytes/cycle) swept by the roofline ablation.
BANDWIDTH_SWEEP = (8.0, 16.0, 32.0, 64.0, 128.0)

#: MIMD dispatch overhead values (cycles per dispatch event) representing the
#: decoupling ablation: 1 = decoupled access-execute (paper), larger values
#: approximate paying the access/fetch overhead on every operation.
DISPATCH_OVERHEAD_SWEEP = (1, 4, 16, 64)


def compute_dispatch_ablation(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, float]]:
    """Geomean speedups as the MIMD dispatch overhead grows."""
    context = ensure_context(context)
    sweep = ParameterSweep(
        context.models, context.config, context.options, runner=context.runner
    )
    points = sweep.run("mimd_dispatch_overhead_cycles", list(DISPATCH_OVERHEAD_SWEEP))
    return {
        point.label: {
            "geomean_speedup": point.geomean_speedup,
            "geomean_energy_reduction": point.geomean_energy_reduction,
        }
        for point in points
    }


def compute_bandwidth_ablation(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, Dict[str, float]]:
    """Geomean speedups as the DRAM bandwidth shrinks (roofline effect)."""
    context = ensure_context(context)
    sweep = ParameterSweep(
        context.models, context.config, context.options, runner=context.runner
    )
    points = sweep.run("dram_bandwidth_bytes_per_cycle", list(BANDWIDTH_SWEEP))
    return {
        point.label: {
            "geomean_speedup": point.geomean_speedup,
            "geomean_energy_reduction": point.geomean_energy_reduction,
        }
        for point in points
    }


def compute_utilization_ablation(
    context: Optional[ExperimentContext] = None,
) -> Dict[str, float]:
    """Geomean speedup as the achievable GANAX utilization cap varies.

    A cap of ~0.9 corresponds to the paper's reported utilization; lower caps
    emulate a dataflow without the filter-row reorganization where idle
    compute nodes remain in the PE sets.
    """
    context = ensure_context(context)
    sweep = ParameterSweep(
        context.models, context.config, context.options, runner=context.runner
    )
    points = sweep.run_configs(
        {
            f"utilization_cap={cap:.2f}":
                context.config.with_updates(ganax_target_utilization=cap)
            for cap in (0.25, 0.5, 0.75, 0.92, 1.0)
        }
    )
    return {point.label: point.geomean_speedup for point in points}


def run(context: Optional[ExperimentContext] = None) -> ExperimentResult:
    """Run all ablations and render a combined report."""
    context = ensure_context(context)
    dispatch = compute_dispatch_ablation(context)
    bandwidth = compute_bandwidth_ablation(context)
    utilization = compute_utilization_ablation(context)

    dispatch_rows = [
        [label, values["geomean_speedup"], values["geomean_energy_reduction"]]
        for label, values in dispatch.items()
    ]
    bandwidth_rows = [
        [label, values["geomean_speedup"], values["geomean_energy_reduction"]]
        for label, values in bandwidth.items()
    ]
    utilization_rows = [[label, value] for label, value in utilization.items()]

    report = "\n\n".join(
        [
            format_table(
                ["MIMD dispatch overhead", "Geomean speedup", "Geomean energy reduction"],
                dispatch_rows,
                title="Ablation: decoupled access-execute (dispatch overhead)",
                float_format="{:.2f}",
            ),
            format_table(
                ["DRAM bandwidth", "Geomean speedup", "Geomean energy reduction"],
                bandwidth_rows,
                title="Ablation: DRAM bandwidth roofline",
                float_format="{:.2f}",
            ),
            format_table(
                ["Utilization cap", "Geomean speedup"],
                utilization_rows,
                title="Ablation: achievable PE utilization (dataflow reorganization)",
                float_format="{:.2f}",
            ),
        ]
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        data={
            "dispatch_overhead": dispatch,
            "dram_bandwidth": bandwidth,
            "utilization_cap": utilization,
        },
        paper_reference={},
        report=report,
    )
