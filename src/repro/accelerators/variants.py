"""Built-in accelerator variants beyond the paper's two-point comparison.

These entries exercise the registry with genuinely heterogeneous models built
from the existing machinery:

* ``ganax-noskip`` — the GANAX machine with zero skipping disabled (forced
  through :attr:`~repro.config.SimulationOptions.ganax_zero_skipping`): the
  transposed convolutions execute the zero-inserted input densely like the
  baseline while still paying the MIMD µop dispatch overhead.  Its speedup
  over EYERISS is therefore slightly *below* 1x, isolating how much of the
  GANAX win comes from the sparsity machinery rather than the MIMD substrate.
* ``ideal`` — a consequential-MACs roofline: every layer finishes in
  ``ceil(consequential_macs / peak_macs_per_cycle)`` cycles and spends only
  MAC energy.  It is the upper bound no dataflow can beat on this array, so
  the gap between ``ganax`` and ``ideal`` is the remaining headroom.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from ..analysis.results import LayerResult
from ..config import ArchitectureConfig, SimulationOptions
from ..core.simulator import GanaxSimulator
from ..hw.counters import EventCounters
from ..hw.energy import EnergyTable
from ..nn.network import LayerBinding
from .base import GanSimulatorBase
from .registry import register_accelerator


@register_accelerator("ganax-noskip")
class GanaxNoSkipSimulator(GanaxSimulator):
    """GANAX ablation: MIMD-SIMD machine with zero skipping disabled."""

    accelerator_name = "ganax-noskip"
    summary = (
        "GANAX without zero skipping: dense transposed convolutions that "
        "still pay the MIMD dispatch overhead"
    )

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        energy_table: Optional[EnergyTable] = None,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        options = self.canonical_options(options or SimulationOptions())
        super().__init__(config=config, energy_table=energy_table, options=options)

    @classmethod
    def canonical_options(cls, options: SimulationOptions) -> SimulationOptions:
        """This variant forces zero skipping off whatever the caller passed."""
        return options.with_updates(ganax_zero_skipping=False)


@register_accelerator("ideal")
class IdealRooflineSimulator(GanSimulatorBase):
    """Consequential-MACs roofline: the bound no dataflow can beat."""

    accelerator_name = "ideal"
    summary = (
        "Ideal roofline: consequential MACs at peak array throughput, "
        "MAC energy only"
    )

    def simulate_layer(self, binding: LayerBinding) -> LayerResult:
        """One layer at peak throughput over its consequential work.

        Layers without MACs (activations, pooling) stream one output element
        per PE per cycle, mirroring the baseline's accounting for them.
        """
        macs = binding.consequential_macs
        work = macs if macs else binding.output_shape.num_elements
        cycles = math.ceil(work / self._config.peak_macs_per_cycle)
        counters = EventCounters()
        counters.mac_ops = macs
        return self._layer_result(
            binding,
            cycles=cycles,
            active_pe_cycles=macs,
            busy_pe_cycles=work,
            total_pe_cycles=cycles * self._config.num_pes,
            counters=counters,
        )

    def config_space(self) -> Tuple[str, ...]:
        """Only the array geometry and clock move the roofline."""
        return ("num_pvs", "pes_per_pv", "frequency_hz", "data_bits")

    @classmethod
    def canonical_options(cls, options: SimulationOptions) -> SimulationOptions:
        """The roofline reads neither the zero-skipping flag nor the schedule."""
        return options.with_updates(ganax_zero_skipping=True, schedule="default")
