"""Pluggable accelerator models: protocol, registry, and built-in variants.

The subsystem has three parts:

* :mod:`~repro.accelerators.base` — the :class:`AcceleratorModel` protocol
  every architecture point implements, plus :class:`GanSimulatorBase`, the
  shared whole-GAN simulation scaffolding the built-in models derive from.
* :mod:`~repro.accelerators.registry` — the decorator-based name registry
  (:func:`register_accelerator`, :func:`get_accelerator`,
  :func:`accelerator_names`) that the runner, :class:`repro.Session` and the
  CLI resolve accelerator names through.
* :mod:`~repro.accelerators.variants` — the built-in entries beyond the
  paper's pair: ``ganax-noskip`` (zero skipping disabled) and ``ideal``
  (consequential-MACs roofline).  ``eyeriss`` and ``ganax`` register from
  their home modules.  All built-ins load lazily on first registry lookup.
* :mod:`~repro.accelerators.design_points` — parametric pinned entries
  (``register_ganax_design_point`` -> ``ganax@<pvs>x<pes>``) that turn a
  :mod:`repro.dse` frontier winner into a first-class registry name.

See ``src/repro/runner/README.md`` for a registration walkthrough.
"""

from .base import AcceleratorModel, GanSimulatorBase
from .design_points import register_design_point, register_ganax_design_point
from .registry import (
    AcceleratorSpec,
    accelerator_names,
    create_accelerator,
    get_accelerator,
    register_accelerator,
    unregister_accelerator,
)

__all__ = [
    "AcceleratorModel",
    "GanSimulatorBase",
    "AcceleratorSpec",
    "accelerator_names",
    "create_accelerator",
    "get_accelerator",
    "register_accelerator",
    "register_design_point",
    "register_ganax_design_point",
    "unregister_accelerator",
]
