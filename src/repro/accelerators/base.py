"""The accelerator-facing protocol and shared whole-GAN simulator scaffolding.

Every architecture point the repository can evaluate — the EYERISS baseline,
GANAX, its ablated variants, roofline bounds, user-defined models — implements
the :class:`AcceleratorModel` protocol: a ``name``, the three simulation entry
points (``simulate_layer`` / ``simulate_network`` / ``simulate_gan``), a
``describe()`` record used for registry listings and cache-key versioning, and
``config_space()`` naming the :class:`~repro.config.ArchitectureConfig` fields
the model's estimates respond to.

:class:`GanSimulatorBase` is the shared implementation the built-in analytical
simulators derive from.  It owns the configuration/options/energy-model
wiring, the batch-size scaling and energy pricing of a layer's raw activity
(:meth:`GanSimulatorBase._layer_result`), and the network / whole-GAN
aggregation including the paper's MAGAN discriminator accounting rule, so a
concrete model only supplies ``simulate_layer``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import (
    Callable,
    Dict,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from ..analysis.results import GanResult, LayerResult, NetworkResult
from ..config import ArchitectureConfig, SimulationOptions
from ..hw.counters import EventCounters
from ..hw.energy import EnergyModel, EnergyTable
from ..nn.network import GANModel, LayerBinding, Network


@runtime_checkable
class AcceleratorModel(Protocol):
    """Structural interface of one simulatable accelerator architecture."""

    @property
    def name(self) -> str:
        """Registry name reported in every result this model produces."""
        ...

    def describe(self) -> Dict[str, str]:
        """``{"name", "version", "description"}`` metadata for this model."""
        ...

    def config_space(self) -> Tuple[str, ...]:
        """Names of the configuration fields this model's estimates react to."""
        ...

    def simulate_layer(self, binding: LayerBinding) -> LayerResult: ...

    def simulate_network(
        self, network: Network, bindings: Optional[Iterable[LayerBinding]] = None
    ) -> NetworkResult: ...

    def simulate_gan(self, model: GANModel) -> GanResult: ...


class GanSimulatorBase:
    """Common machinery for the analytical whole-GAN simulators.

    Class attributes subclasses override:

    ``accelerator_name``
        The registry name; stamped into every :class:`LayerResult`,
        :class:`NetworkResult` and :class:`GanResult`.
    ``model_version``
        Bumped whenever the model's numbers change.  The registration
        decorator copies it into the :class:`AcceleratorSpec` (unless an
        explicit ``version=`` is given, which is written back here), and the
        spec version participates in the runner's cache keys, so stale
        cached results are never served for a revised model.
    ``summary``
        One-line human description used by ``describe()``.
    """

    accelerator_name: str = ""
    model_version: str = "1"
    summary: str = ""
    #: Whether :class:`~repro.hw.area.AreaModel` should include the
    #: GANAX-specific units (strided µindex generators, local/global µop
    #: buffers, address FIFOs) when costing this model's silicon.  True for
    #: every GANAX-derived model; the EYERISS baseline overrides it.
    ganax_area_model: bool = True

    def __init__(
        self,
        config: Optional[ArchitectureConfig] = None,
        energy_table: Optional[EnergyTable] = None,
        options: Optional[SimulationOptions] = None,
    ) -> None:
        self._config = config or ArchitectureConfig.paper_default()
        self._options = options or SimulationOptions()
        self._energy_model = EnergyModel(
            table=energy_table or EnergyTable.paper_table2(),
            data_bits=self._config.data_bits,
            gated_op_fraction=self._config.zero_gating_energy_fraction,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.accelerator_name

    @property
    def config(self) -> ArchitectureConfig:
        return self._config

    @property
    def options(self) -> SimulationOptions:
        return self._options

    @property
    def energy_model(self) -> EnergyModel:
        return self._energy_model

    def describe(self) -> Dict[str, str]:
        return {
            "name": self.accelerator_name,
            "version": self.model_version,
            "description": self.summary,
        }

    def config_space(self) -> Tuple[str, ...]:
        """Default: every architectural parameter may influence the model."""
        return tuple(f.name for f in dataclass_fields(ArchitectureConfig))

    @classmethod
    def canonical_options(cls, options: SimulationOptions) -> SimulationOptions:
        """Options as this model effectively simulates them.

        The runner fingerprints the canonical form, so option values a model
        ignores or forces (see ``ganax-noskip``) collapse to one cache entry.
        Overrides must preserve the cache contract: two option values that
        canonicalize equal must produce equal results on this model.
        """
        return options

    # ------------------------------------------------------------------
    # Layer / network / model entry points
    # ------------------------------------------------------------------
    def simulate_layer(self, binding: LayerBinding) -> LayerResult:
        raise NotImplementedError(
            f"{type(self).__name__} must implement simulate_layer"
        )

    def simulate_layers(
        self, bindings: Sequence[LayerBinding]
    ) -> Tuple[LayerResult, ...]:
        """Simulate a batch of bound layers (the network-simulation hot path).

        The default delegates to :meth:`simulate_layer` per binding; the
        built-in analytical simulators override it with vectorized
        whole-table estimators that produce bit-identical results.  The
        runner's layer-grain memo also routes its misses through this entry
        point so shared layer shapes are computed in one batch.
        """
        return tuple(self.simulate_layer(binding) for binding in bindings)

    def _layer_results_from_estimates(
        self, bindings: Sequence[LayerBinding], estimates: Sequence[object]
    ) -> Tuple[LayerResult, ...]:
        """Price and batch-scale a column of raw per-layer estimates."""
        return tuple(
            self._layer_result(
                binding,
                cycles=estimate.cycles,
                active_pe_cycles=estimate.active_pe_cycles,
                busy_pe_cycles=estimate.busy_pe_cycles,
                total_pe_cycles=estimate.total_pe_cycles,
                counters=estimate.counters,
            )
            for binding, estimate in zip(bindings, estimates)
        )

    def _layer_result(
        self,
        binding: LayerBinding,
        cycles: int,
        active_pe_cycles: int,
        busy_pe_cycles: int,
        total_pe_cycles: int,
        counters: EventCounters,
    ) -> LayerResult:
        """Scale one layer's raw activity by the batch size and price energy."""
        batch = self._options.batch_size
        scaled = counters.scaled(batch)
        return LayerResult(
            layer_name=binding.name,
            accelerator=self.name,
            cycles=cycles * batch,
            active_pe_cycles=active_pe_cycles * batch,
            busy_pe_cycles=busy_pe_cycles * batch,
            total_pe_cycles=total_pe_cycles * batch,
            macs_total=binding.total_macs * batch,
            macs_consequential=binding.consequential_macs * batch,
            counters=scaled,
            energy=self._energy_model.energy_of(scaled),
            is_transposed=binding.is_transposed,
            is_convolutional=binding.is_convolutional,
        )

    def simulate_network(
        self,
        network: Network,
        bindings: Optional[Iterable[LayerBinding]] = None,
        layer_fn: Optional[
            Callable[[Sequence[LayerBinding]], Sequence[LayerResult]]
        ] = None,
    ) -> NetworkResult:
        """Simulate every (or a chosen subset of) layer of ``network``.

        ``layer_fn`` replaces :meth:`simulate_layers` as the batch evaluator;
        the runner's layer-grain memo passes a wrapper that serves cached
        layers and routes only the misses into :meth:`simulate_layers`.
        """
        selected = tuple(bindings) if bindings is not None else network.bindings
        compute = layer_fn if layer_fn is not None else self.simulate_layers
        results = tuple(compute(selected))
        return NetworkResult(
            network_name=network.name,
            accelerator=self.name,
            layer_results=results,
        )

    def simulate_gan(
        self,
        model: GANModel,
        layer_fn: Optional[
            Callable[[Sequence[LayerBinding]], Sequence[LayerResult]]
        ] = None,
    ) -> GanResult:
        """Simulate a full GAN: generator plus (optionally) discriminator."""
        generator = self.simulate_network(model.generator, layer_fn=layer_fn)
        discriminator = None
        if self._options.include_discriminator:
            bindings = model.discriminator.bindings
            if model.discriminator_conv_only and self._options.magan_discriminator_conv_only:
                bindings = tuple(b for b in bindings if not b.is_transposed)
            discriminator = self.simulate_network(
                model.discriminator, bindings, layer_fn=layer_fn
            )
        return GanResult(
            model_name=model.name,
            accelerator=self.name,
            generator=generator,
            discriminator=discriminator,
        )
