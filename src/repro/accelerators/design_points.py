"""Pinned design points as first-class accelerator registry entries.

A design-space exploration (:mod:`repro.dse`) produces winning
configurations; this module turns such a winner into a *named accelerator*:
``register_design_point`` derives a subclass of a registered simulator class
that forces the chosen configuration fields whatever configuration a job
carries, and registers it under a parametric name such as ``ganax@8x16``.
The pinned entry then works everywhere an accelerator name does — jobs,
:class:`repro.Session`, sweeps, and the CLI's ``--accelerators`` flag — so a
frontier point can be compared head-to-head against the stock models::

    from repro.accelerators import register_ganax_design_point
    from repro import Session

    name = register_ganax_design_point(num_pvs=8, pes_per_pv=16)
    multi = Session(accelerators=("eyeriss", "ganax", name)).compare("DCGAN")

Because entries register at call time, they are visible to
:class:`~repro.runner.ProcessPoolBackend` workers only when the registering
call runs at import time of an importable module (the same caveat as any
custom registration); serial backends need no such care.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Type

from ..config import ArchitectureConfig, SimulationOptions, _canonical_value
from ..errors import ConfigurationError
from .base import GanSimulatorBase
from .registry import register_accelerator


def register_design_point(
    base: Type[GanSimulatorBase],
    name: str,
    description: str = "",
    version: Optional[str] = None,
    **pinned_fields: Any,
) -> str:
    """Register a ``base`` simulator variant with configuration fields pinned.

    The derived entry overrides the listed :class:`ArchitectureConfig` fields
    of whatever configuration it is instantiated with, so the registered name
    *is* the design point: two jobs differing only in a pinned field produce
    identical results on it.  The registry version is derived from the base
    class's ``model_version`` plus the pinned assignment, so revising the
    base model invalidates the pinned entry's cached results too.  Returns
    the registered name.
    """
    if not issubclass(base, GanSimulatorBase):
        raise ConfigurationError(
            f"design points require a GanSimulatorBase subclass, got {base!r}"
        )
    if not pinned_fields:
        raise ConfigurationError("a design point must pin at least one field")
    name = str(name).strip().lower()  # match the registry's canonical spelling
    known = set(ArchitectureConfig.paper_default().to_mapping())
    unknown = set(pinned_fields) - known
    if unknown:
        raise ConfigurationError(
            f"unknown ArchitectureConfig fields: {sorted(unknown)}"
        )
    pinned: Dict[str, Any] = {
        field: _canonical_value(value)
        for field, value in sorted(pinned_fields.items())
    }
    pin_label = ",".join(f"{field}={value}" for field, value in pinned.items())

    class PinnedDesignPoint(base):  # type: ignore[valid-type, misc]
        accelerator_name = name
        model_version = f"{base.model_version}+{pin_label}"
        summary = description or (
            f"{base.accelerator_name or base.__name__} pinned to {pin_label}"
        )

        def __init__(
            self,
            config: Optional[ArchitectureConfig] = None,
            energy_table: Optional[Any] = None,
            options: Optional[SimulationOptions] = None,
        ) -> None:
            config = (config or ArchitectureConfig.paper_default()).with_updates(
                **pinned
            )
            super().__init__(config=config, energy_table=energy_table, options=options)

        def config_space(self) -> Tuple[str, ...]:
            """Pinned fields are no longer free axes of this entry."""
            return tuple(f for f in super().config_space() if f not in pinned)

    PinnedDesignPoint.__name__ = f"DesignPoint_{base.__name__}"
    PinnedDesignPoint.__qualname__ = PinnedDesignPoint.__name__
    register_accelerator(name, version=version, description=PinnedDesignPoint.summary)(
        PinnedDesignPoint
    )
    return name


def register_ganax_design_point(
    num_pvs: int,
    pes_per_pv: int,
    name: Optional[str] = None,
    description: str = "",
    **extra_fields: Any,
) -> str:
    """Register a swept-GANAX geometry point, named ``ganax@<pvs>x<pes>``.

    The convenience wrapper for the most common pin — the PE-array geometry a
    :mod:`repro.dse` search optimizes over.  Additional configuration fields
    (e.g. ``dram_bandwidth_bytes_per_cycle``) can be pinned alongside.
    """
    from ..core.simulator import GanaxSimulator

    return register_design_point(
        GanaxSimulator,
        name or f"ganax@{num_pvs}x{pes_per_pv}",
        description=description,
        num_pvs=num_pvs,
        pes_per_pv=pes_per_pv,
        **extra_fields,
    )
