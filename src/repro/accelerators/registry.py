"""Decorator-based registry of accelerator models.

The registry turns the accelerator set into an open one: any class or factory
implementing :class:`~repro.accelerators.base.AcceleratorModel` can be
registered under a name and immediately becomes usable everywhere an
accelerator name is accepted — :class:`~repro.runner.SimulationJob`,
:class:`repro.Session`, the sweep helpers and the CLI's ``--accelerators``
flag.

Registering::

    from repro.accelerators import register_accelerator
    from repro.accelerators.base import GanSimulatorBase

    @register_accelerator("my-accel", version="1", description="...")
    class MyAccelerator(GanSimulatorBase):
        accelerator_name = "my-accel"

        def simulate_layer(self, binding):
            ...

A factory function ``(config=None, options=None) -> AcceleratorModel`` can be
registered the same way.  The built-in entries (``eyeriss``, ``ganax``,
``ganax-noskip``, ``ideal``) live in their home modules and are loaded lazily
on first lookup, so importing this module alone never drags in the simulator
stack.  Worker processes of a pooled runner re-import the registering modules,
so custom accelerators must be registered at import time of an importable
module to be visible to :class:`~repro.runner.ProcessPoolBackend`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from typing import TYPE_CHECKING

from ..config import ArchitectureConfig, SimulationOptions
from ..errors import ConfigurationError, UnknownAcceleratorError

if TYPE_CHECKING:  # import only for annotations: base pulls in the
    from .base import AcceleratorModel  # analysis stack, which imports us back

#: Builds a simulator for one job: ``factory(config=..., options=...)``.
AcceleratorFactory = Callable[..., "AcceleratorModel"]


@dataclass(frozen=True)
class AcceleratorSpec:
    """One registry entry: name, version, description and instance factory.

    The ``version`` participates in the runner's content-hash cache keys
    (see :attr:`repro.runner.SimulationJob.cache_key`): bumping it when the
    model's numbers change invalidates every stale cached result without
    touching the cache itself.  For registered classes it is kept in sync
    with the class's ``model_version`` attribute by the decorator.
    """

    name: str
    version: str
    description: str
    factory: AcceleratorFactory
    #: Optional hook collapsing option values the model ignores or overrides
    #: (e.g. ``ganax-noskip`` forces ``ganax_zero_skipping`` off) so
    #: equivalent jobs share one cache entry.  Must preserve result equality.
    options_canonicalizer: Optional[Callable[[SimulationOptions], SimulationOptions]] = None

    def create(
        self,
        config: Optional[ArchitectureConfig] = None,
        options: Optional[SimulationOptions] = None,
    ) -> AcceleratorModel:
        """Instantiate the model for one (config, options) pair."""
        return self.factory(config=config, options=options)

    def canonical_options(self, options: SimulationOptions) -> SimulationOptions:
        """Options as this model effectively simulates them (for cache keys)."""
        if self.options_canonicalizer is None:
            return options
        return self.options_canonicalizer(options)

    def describe(self) -> Dict[str, str]:
        """JSON-friendly metadata record (no instantiation needed)."""
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
        }


_REGISTRY: Dict[str, AcceleratorSpec] = {}
_builtins_loaded = False


def _load_builtin_accelerators() -> None:
    """Import the modules that register the built-in accelerators.

    Deferred to the first registry lookup so that the registry module itself
    has no import-time dependency on the simulator stack (which in turn
    depends on :mod:`repro.accelerators.base`).
    """
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from ..baseline import simulator as _baseline_simulator  # noqa: F401
    from ..core import simulator as _core_simulator  # noqa: F401
    from . import variants  # noqa: F401


def _normalize_name(name: str) -> str:
    key = str(name).strip().lower()
    if not key:
        raise ConfigurationError("accelerator name must be non-empty")
    return key


def register_accelerator(
    name: str, *, version: Optional[str] = None, description: str = ""
) -> Callable[[AcceleratorFactory], AcceleratorFactory]:
    """Class/function decorator adding an accelerator model to the registry.

    Accepts either a simulator class whose constructor takes keyword
    arguments ``config`` and ``options`` (the
    :class:`~repro.accelerators.base.GanSimulatorBase` signature) or a factory
    function with that signature.  The created model must report the
    registered name as its ``name`` — ``execute_job`` enforces this.
    Duplicate names are rejected — a model revision should bump ``version``,
    not shadow an existing entry.

    For classes, ``version`` defaults to the class's ``model_version``
    attribute, and an explicit ``version=`` argument is written back to it,
    so the registry's cache-keyed version and the instance's ``describe()``
    can never disagree.
    """
    key = _normalize_name(name)

    def decorator(obj: AcceleratorFactory) -> AcceleratorFactory:
        # Load the builtins first (no-op while they are mid-import) so a
        # custom registration can never accidentally shadow a built-in name.
        _load_builtin_accelerators()
        if key in _REGISTRY:
            raise ConfigurationError(
                f"accelerator '{key}' is already registered; "
                "unregister it first or pick a different name"
            )
        canonicalizer = None
        if inspect.isclass(obj):
            declared = getattr(obj, "accelerator_name", key)
            if declared != key:
                raise ConfigurationError(
                    f"class {obj.__name__} declares accelerator_name "
                    f"'{declared}' but is registered as '{key}'"
                )
            resolved_version = str(
                version if version is not None else getattr(obj, "model_version", "1")
            )
            obj.model_version = resolved_version  # keep describe() in sync
            canonicalizer = getattr(obj, "canonical_options", None)

            def factory(config=None, options=None):  # type: ignore[no-untyped-def]
                return obj(config=config, options=options)

        else:
            resolved_version = str(version if version is not None else "1")
            factory = obj
        doc = description or (inspect.getdoc(obj) or "").partition("\n")[0]
        _REGISTRY[key] = AcceleratorSpec(
            name=key,
            version=resolved_version,
            description=doc,
            factory=factory,
            options_canonicalizer=canonicalizer,
        )
        return obj

    return decorator


def unregister_accelerator(name: str) -> AcceleratorSpec:
    """Remove a registry entry (mainly for tests and plugin teardown)."""
    spec = get_accelerator(name)
    del _REGISTRY[spec.name]
    return spec


def accelerator_names() -> Tuple[str, ...]:
    """Every registered accelerator name, sorted for stable listings."""
    _load_builtin_accelerators()
    return tuple(sorted(_REGISTRY))


def get_accelerator(name: str) -> AcceleratorSpec:
    """Look up one accelerator's spec; unknown names raise a helpful error."""
    _load_builtin_accelerators()
    key = str(name).strip().lower()
    spec = _REGISTRY.get(key)
    if spec is None:
        raise UnknownAcceleratorError(name, accelerator_names())
    return spec


def create_accelerator(
    name: str,
    config: Optional[ArchitectureConfig] = None,
    options: Optional[SimulationOptions] = None,
) -> AcceleratorModel:
    """Instantiate a registered accelerator model by name."""
    return get_accelerator(name).create(config=config, options=options)
