#!/usr/bin/env python
"""ISA walkthrough: run a tiny transposed convolution on the cycle-level machine.

This example demonstrates the GANAX microarchitecture end to end:

1. it builds the paper's motivating example — a 4x4 input, a 5x5 filter,
   stride 2, padding 2 (Figure 4) — and analyses its zero structure,
2. it shows the µop ISA by assembling and disassembling a short program,
3. it compiles the layer onto the cycle-level machine twice, once with the
   GANAX dataflow (zero skipping + row reorganization) and once with the
   conventional dense dataflow, and
4. it verifies both against the NumPy functional reference and compares the
   PE-level work.

Run with::

    python examples/isa_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core import GanaxLayerExecutor, build_schedule
from repro.isa import assemble, disassemble
from repro.nn import (
    FeatureMapShape,
    TransposedConvLayer,
    analyze_transposed_conv,
)
from repro.nn.functional import transposed_conv2d
from repro.nn.network import LayerBinding


def describe_dataflow() -> None:
    """Reproduce the Section II analysis of the paper's running example."""
    layer = TransposedConvLayer(
        name="example", out_channels=1, kernel=5, stride=2, padding=2
    )
    input_shape = FeatureMapShape.image(1, 4, 4)
    analysis = analyze_transposed_conv(layer, input_shape)
    print("Paper running example: 4x4 input, 5x5 filter, stride 2, padding 2")
    print(f"  output shape:            {analysis.output_shape}")
    print(f"  dense MACs:              {analysis.total_macs}")
    print(f"  consequential MACs:      {analysis.consequential_macs}")
    print(f"  inconsequential fraction:{100 * analysis.inconsequential_fraction:5.1f}%")
    print(f"  distinct row patterns:   {analysis.num_patterns}")
    for pattern in analysis.row_patterns:
        print(
            f"    phase {pattern.phase}: consequential filter rows "
            f"{pattern.consequential_filter_rows} "
            f"(accumulation chain of {pattern.filter_rows_used} instead of 5)"
        )

    binding = LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )
    schedule = build_schedule(binding)
    print(
        "  idle compute nodes under the conventional dataflow: "
        f"{100 * schedule.baseline_idle_fraction():.0f}% (paper: 50%)"
    )
    print()


def show_isa() -> None:
    """Assemble and disassemble a small GANAX µop sequence."""
    source = """
    # Configure the input-address generator of PV0 and start it.
    access.cfg   %pv0, %gen0, %addr, 0
    access.cfg   %pv0, %gen0, %offset, 16
    access.cfg   %pv0, %gen0, %step, 1
    access.cfg   %pv0, %gen0, %end, 3
    access.cfg   %pv0, %gen0, %repeat, 1
    access.start %pv0, %gen0
    # Preload the repeat register and run three MACs, then commit.
    mimd.ld      %pv0, %repeat, 3
    repeat
    mac
    act          identity
    # MIMD-SIMD dispatch: PV0 runs local µop 0, PV1 runs local µop 1.
    mimd.exe     0, 1
    """
    uops = assemble(source)
    print("Assembled µop stream (disassembled back):")
    for line in disassemble(uops).splitlines():
        print(f"  {line}")
    print()


def run_on_machine() -> None:
    """Execute the example layer on the cycle-level machine, both dataflows."""
    rng = np.random.default_rng(2018)
    x = rng.standard_normal((4, 4))
    w = rng.standard_normal((5, 5))
    reference = transposed_conv2d(x[None], w[None, None], stride=2, padding=2)[0]

    ganax = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4, skip_zeros=True)
    dense = GanaxLayerExecutor(num_pvs=2, pes_per_pv=5, skip_zeros=False)

    ganax_run = ganax.run_transposed_conv(x, w, stride=2, padding=2)
    dense_run = dense.run_transposed_conv(x, w, stride=2, padding=2)

    print("Cycle-level execution of the example layer:")
    print(f"  GANAX dataflow  : max |error| vs NumPy = {np.abs(ganax_run.output - reference).max():.2e}")
    print(f"  dense dataflow  : max |error| vs NumPy = {np.abs(dense_run.output - reference).max():.2e}")
    print(f"  PE µops executed: GANAX {ganax_run.executed_pe_uops}, dense {dense_run.executed_pe_uops}")
    ratio = dense_run.executed_pe_uops / max(1, ganax_run.executed_pe_uops)
    print(f"  -> the reorganized, zero-skipping dataflow performs {ratio:.2f}x fewer PE operations")


def main() -> int:
    describe_dataflow()
    show_isa()
    run_on_machine()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
