#!/usr/bin/env python
"""Design-space exploration: define a custom GAN and sweep the architecture.

This example shows how a downstream user would employ the library beyond the
paper's six workloads:

1. define a new GAN architecture (a super-resolution style generator with
   large-stride transposed convolutions and a small discriminator),
2. evaluate it on GANAX and the EYERISS baseline, and
3. sweep architectural parameters (PE array shape, DRAM bandwidth) to see how
   the GANAX advantage shifts across design points.

Run with::

    python examples/design_space.py
"""

from __future__ import annotations

from repro import ArchitectureConfig, compare_model
from repro.analysis.report import format_table
from repro.analysis.sweep import ParameterSweep
from repro.nn import FeatureMapShape, GANModel, Network
from repro.workloads.builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    tconv_stack,
)


def build_custom_gan() -> GANModel:
    """A super-resolution style GAN with aggressive (stride-4) upsampling."""
    seed = FeatureMapShape.image(channels=512, height=8, width=8)
    generator_layers = tconv_stack(
        channel_plan=[256, 128, 3],
        kernel=8,
        stride=4,
        padding=2,
        prefix="up",
    )
    generator = build_generator("srgan_generator", 128, seed, generator_layers)

    image = generator.output_shape
    discriminator_layers = conv_stack(
        channel_plan=[64, 128, 256, 512],
        kernel=4,
        stride=4,
        padding=1,
        prefix="down",
    )
    discriminator = build_discriminator("srgan_discriminator", image, discriminator_layers)
    return GANModel(
        name="SR-GAN (custom)",
        generator=generator,
        discriminator=discriminator,
        year=2026,
        description="Custom super-resolution workload (not from the paper)",
    )


def main() -> int:
    model = build_custom_gan()
    print(f"Custom workload: {model.name}")
    print(f"  generator output: {model.generator.output_shape}")
    print(
        "  inconsequential MACs in TConv layers: "
        f"{100 * model.generator_tconv_inconsequential_fraction():.1f}% "
        "(stride-4 upsampling inserts 3 zeros between samples)"
    )
    print()

    comparison = compare_model(model)
    print(
        f"  GANAX speedup {comparison.generator_speedup:.2f}x, "
        f"energy reduction {comparison.generator_energy_reduction:.2f}x, "
        f"PE utilization {100 * comparison.ganax_generator_utilization:.0f}% "
        f"(vs {100 * comparison.eyeriss_generator_utilization:.0f}% on EYERISS)"
    )
    print()

    # Sweep the PE array shape at constant PE count: tall-and-narrow arrays
    # give each PV fewer PEs than the kernel needs, wide arrays waste rows.
    shapes = {
        "8 PVs x 32 PEs": ArchitectureConfig.paper_default().with_updates(num_pvs=8, pes_per_pv=32),
        "16 PVs x 16 PEs (paper)": ArchitectureConfig.paper_default(),
        "32 PVs x 8 PEs": ArchitectureConfig.paper_default().with_updates(num_pvs=32, pes_per_pv=8),
    }
    sweep = ParameterSweep([model])
    points = sweep.run_configs(shapes)
    rows = [[p.label, p.geomean_speedup, p.geomean_energy_reduction] for p in points]
    print(format_table(
        ["Array shape", "Speedup", "Energy reduction"],
        rows,
        title="PE array shape sweep (custom workload)",
        float_format="{:.2f}",
    ))
    print()

    bandwidth_points = sweep.run("dram_bandwidth_bytes_per_cycle", [8.0, 16.0, 32.0, 64.0, 128.0])
    rows = [[p.label, p.geomean_speedup, p.geomean_energy_reduction] for p in bandwidth_points]
    print(format_table(
        ["DRAM bandwidth", "Speedup", "Energy reduction"],
        rows,
        title="DRAM bandwidth sweep (custom workload)",
        float_format="{:.2f}",
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
