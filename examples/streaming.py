#!/usr/bin/env python
"""Streaming execution: consume comparison results as they land.

This example demonstrates the streaming API introduced by the runner
redesign, at its three levels:

1. ``Session.stream_compare`` — the high-level consumer: each model's
   N-way :class:`~repro.analysis.results.MultiComparison` is yielded the
   moment *its* simulations finish, instead of with the slowest model;
2. the typed :class:`~repro.runner.RunnerEvent` stream — a subscribed
   listener narrates every job's life cycle (scheduled, started,
   cache-hit, completed, ...), which is exactly how the CLI's
   ``--progress`` and ``--jsonl`` flags are built;
3. raw ``submit()`` + ``BatchHandle.as_completed()`` — per-job
   completions in completion order, with provenance showing whether each
   result was executed, served from cache, or deduplicated.

Run with::

    python examples/streaming.py
"""

from __future__ import annotations

from repro import Session, SimulationJob, SimulationRunner
from repro.accelerators import accelerator_names

MODELS = ("DCGAN", "ArtGAN", "MAGAN")


def main() -> int:
    runner = SimulationRunner()

    # 2. Subscribe a narrator before submitting anything: every job any
    #    consumer routes through this runner reports its life cycle.
    terminal_count = [0]

    def narrate(event):
        if event.is_terminal:
            terminal_count[0] += 1
            print(
                f"    event: {event.job.model_name:>7s} on "
                f"{event.job.accelerator:<12s} -> {event.kind}"
                f" ({event.provenance})"
            )

    unsubscribe = runner.subscribe(narrate)

    # 1. Stream an N-way comparison: rows print as each model completes.
    print("streaming compare over", ", ".join(accelerator_names()))
    session = Session(accelerators=accelerator_names(), runner=runner)
    for name, multi in session.stream_compare(MODELS):
        speedups = ", ".join(
            f"{acc}={multi.generator_speedup(acc):.2f}x"
            for acc in multi.accelerators
        )
        print(f"  {name}: {speedups}")
    unsubscribe()

    # 3. Raw submit/as_completed: the same jobs are warm now, so every
    #    completion resolves instantly with provenance "cache"/"deduplicated".
    jobs = [
        job
        for name in MODELS
        for job in SimulationJob.for_accelerators(name, accelerator_names())
    ]
    handle = runner.submit(jobs)
    provenances = [provenance for _job, _result, provenance in handle.as_completed()]
    print(
        f"warm re-submission: {len(provenances)} jobs, "
        f"provenances: {sorted(set(provenances))}, "
        f"backend untouched: {handle.counts()['completed'] == 0}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
