#!/usr/bin/env python
"""Full paper evaluation: regenerate every table and figure in one run.

This drives the same experiment registry the benchmarks use and prints the
rendered reports (Figures 1, 8, 9, 10, 11 and Tables I, II, III plus the
ablations).  Optionally dumps the raw data as JSON.

Run with::

    python examples/paper_evaluation.py [--json results.json]
"""

from __future__ import annotations

import argparse
import json

from repro.experiments import ExperimentContext, run_all


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", default=None, help="write raw results to this path")
    args = parser.parse_args()

    context = ExperimentContext()
    results = run_all(context)

    for result in results:
        print(result.report)
        print()

    if args.json:
        payload = {
            r.experiment_id: {"title": r.title, "data": r.data, "paper": r.paper_reference}
            for r in results
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
