#!/usr/bin/env python
"""Quickstart: compare one GAN on GANAX and on the EYERISS baseline.

This example builds the DCGAN workload, runs its generator and discriminator
through both accelerator models, and prints the headline metrics the GANAX
paper reports: speedup, energy reduction and PE utilization of the generative
model, plus a per-layer view showing where the zero-skipping dataflow pays
off.

Run with::

    python examples/quickstart.py [MODEL]

where MODEL is one of 3D-GAN, ArtGAN, DCGAN, DiscoGAN, GP-GAN, MAGAN — or a
workload-family spec string such as ``dcgan@32x32`` or ``synthetic@d8c256``
(run ``repro-experiments list-workloads`` for the grammar).
"""

from __future__ import annotations

import sys

from repro import ArchitectureConfig, compare_model, get_workload
from repro.analysis.report import format_key_values, format_table


def main() -> int:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "DCGAN"
    model = get_workload(model_name)
    config = ArchitectureConfig.paper_default()

    print(f"Workload: {model.name} — {model.description}")
    counts = model.layer_counts()
    print(
        f"  generator: {counts['generator_conv']} conv / {counts['generator_tconv']} tconv layers, "
        f"discriminator: {counts['discriminator_conv']} conv / {counts['discriminator_tconv']} tconv layers"
    )
    print(
        "  inconsequential MACs in generator TConv layers: "
        f"{100 * model.generator_tconv_inconsequential_fraction():.1f}%"
    )
    print()

    comparison = compare_model(model, config)

    headline = {
        "Generator speedup over EYERISS": f"{comparison.generator_speedup:.2f}x",
        "Generator energy reduction": f"{comparison.generator_energy_reduction:.2f}x",
        "EYERISS PE utilization": f"{100 * comparison.eyeriss_generator_utilization:.1f}%",
        "GANAX PE utilization": f"{100 * comparison.ganax_generator_utilization:.1f}%",
        "EYERISS generator runtime (ms)": f"{1e3 * config.cycles_to_seconds(comparison.eyeriss.generator.cycles):.3f}",
        "GANAX generator runtime (ms)": f"{1e3 * config.cycles_to_seconds(comparison.ganax.generator.cycles):.3f}",
        "EYERISS generator energy (uJ)": f"{comparison.eyeriss.generator.energy.total_uj:.1f}",
        "GANAX generator energy (uJ)": f"{comparison.ganax.generator.energy.total_uj:.1f}",
    }
    print(format_key_values(f"{model.name}: GANAX vs EYERISS", headline))
    print()

    rows = []
    eyeriss_layers = {r.layer_name: r for r in comparison.eyeriss.generator.layer_results}
    for result in comparison.ganax.generator.layer_results:
        if not result.is_convolutional:
            continue
        baseline = eyeriss_layers[result.layer_name]
        rows.append(
            [
                result.layer_name,
                "tconv" if result.is_transposed else "conv",
                result.macs_total,
                result.macs_consequential,
                baseline.cycles,
                result.cycles,
                baseline.cycles / max(1, result.cycles),
            ]
        )
    print(
        format_table(
            ["Layer", "Type", "Dense MACs", "Consequential MACs", "EYERISS cycles", "GANAX cycles", "Speedup"],
            rows,
            title=f"{model.name} generator, layer by layer",
            float_format="{:.2f}",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
