"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ArchitectureConfig, SimulationOptions
from repro.nn.layers import ConvLayer, TransposedConvLayer
from repro.nn.network import LayerBinding
from repro.nn.shapes import FeatureMapShape
from repro.workloads.registry import get_workload


@pytest.fixture(scope="session")
def paper_config() -> ArchitectureConfig:
    """The 16x16 PE, 500 MHz configuration evaluated in the paper."""
    return ArchitectureConfig.paper_default()


@pytest.fixture(scope="session")
def small_config() -> ArchitectureConfig:
    """A small array configuration used by cycle-level tests."""
    return ArchitectureConfig.paper_default().with_updates(num_pvs=2, pes_per_pv=4)


@pytest.fixture(scope="session")
def options() -> SimulationOptions:
    return SimulationOptions()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for numerical tests."""
    return np.random.default_rng(20180601)


@pytest.fixture(scope="session")
def example_tconv_layer() -> TransposedConvLayer:
    """The paper's running example: 5x5 filter, stride 2, padding 2."""
    return TransposedConvLayer(
        name="example_tconv", out_channels=1, kernel=5, stride=2, padding=2
    )


@pytest.fixture(scope="session")
def example_tconv_input() -> FeatureMapShape:
    """The paper's running example input: a 4x4 single-channel map."""
    return FeatureMapShape.image(1, 4, 4)


@pytest.fixture(scope="session")
def example_tconv_binding(example_tconv_layer, example_tconv_input) -> LayerBinding:
    return LayerBinding(
        index=0,
        layer=example_tconv_layer,
        input_shape=example_tconv_input,
        output_shape=example_tconv_layer.output_shape(example_tconv_input),
    )


@pytest.fixture(scope="session")
def dcgan_like_tconv_binding() -> LayerBinding:
    """A multi-channel DCGAN-style transposed convolution binding."""
    layer = TransposedConvLayer(
        name="dcgan_tconv",
        out_channels=8,
        kernel=4,
        stride=2,
        padding=1,
    )
    input_shape = FeatureMapShape.image(16, 8, 8)
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


@pytest.fixture(scope="session")
def conv_binding() -> LayerBinding:
    """A conventional convolution binding (discriminator-style)."""
    layer = ConvLayer(name="disc_conv", out_channels=8, kernel=4, stride=2, padding=1)
    input_shape = FeatureMapShape.image(4, 16, 16)
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


@pytest.fixture(scope="session")
def dcgan_model():
    return get_workload("DCGAN")


@pytest.fixture(scope="session")
def magan_model():
    return get_workload("MAGAN")


@pytest.fixture(scope="session")
def threedgan_model():
    return get_workload("3D-GAN")
