"""Unit tests for the workload builder helpers."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.nn.layers import ConvLayer, DenseLayer, TransposedConvLayer
from repro.nn.shapes import FeatureMapShape
from repro.workloads.builder import (
    build_discriminator,
    build_generator,
    conv_stack,
    projection_layers,
    tconv_stack,
)


class TestProjectionLayers:
    def test_projection_shapes(self):
        target = FeatureMapShape.image(64, 4, 4)
        input_shape, layers = projection_layers(100, target)
        assert input_shape.num_elements == 100
        assert len(layers) == 4
        assert isinstance(layers[0], DenseLayer)
        assert layers[0].out_features == target.num_elements

    def test_rejects_nonpositive_latent(self):
        with pytest.raises(WorkloadError):
            projection_layers(0, FeatureMapShape.image(4, 2, 2))


class TestTconvStack:
    def test_layer_count_and_types(self):
        layers = tconv_stack(channel_plan=[32, 16, 3], kernel=4, stride=2, padding=1)
        tconvs = [l for l in layers if isinstance(l, TransposedConvLayer)]
        assert len(tconvs) == 3
        assert tconvs[-1].out_channels == 3

    def test_last_block_has_final_activation_no_bn(self):
        layers = tconv_stack(
            channel_plan=[8, 3], kernel=4, stride=2, padding=1, final_activation="tanh"
        )
        names = [l.name for l in layers]
        assert "tconv2_bn" not in names
        final_acts = [l for l in layers if l.name == "tconv2_act"]
        assert final_acts[0].function == "tanh"

    def test_per_block_strides(self):
        layers = tconv_stack(
            channel_plan=[8, 8, 3], kernel=4, stride=[2, 1, 2], padding=1
        )
        tconvs = [l for l in layers if isinstance(l, TransposedConvLayer)]
        assert [t.stride[0] for t in tconvs] == [2, 1, 2]

    def test_stride_list_length_mismatch_raises(self):
        with pytest.raises(WorkloadError):
            tconv_stack(channel_plan=[8, 3], kernel=4, stride=[2, 2, 2], padding=1)

    def test_empty_plan_raises(self):
        with pytest.raises(WorkloadError):
            tconv_stack(channel_plan=[], kernel=4, stride=2, padding=1)


class TestConvStack:
    def test_layer_count(self):
        layers = conv_stack(channel_plan=[16, 32], kernel=4, stride=2, padding=1)
        convs = [l for l in layers if isinstance(l, ConvLayer)]
        assert len(convs) == 2

    def test_no_final_activation_when_none(self):
        layers = conv_stack(
            channel_plan=[16, 32], kernel=4, stride=2, padding=1, final_activation=None
        )
        assert layers[-1].name == "conv2"

    def test_3d_stack(self):
        layers = conv_stack(channel_plan=[8], kernel=4, stride=2, padding=1, rank=3)
        conv = layers[0]
        assert isinstance(conv, ConvLayer)
        assert conv.rank == 3
        assert conv.kernel == (4, 4, 4)


class TestAssembly:
    def test_build_generator_shape_chain(self):
        seed = FeatureMapShape.image(32, 4, 4)
        layers = tconv_stack(channel_plan=[16, 3], kernel=4, stride=2, padding=1)
        generator = build_generator("g", 64, seed, layers)
        assert generator.input_shape.num_elements == 64
        assert generator.output_shape.as_tuple() == (3, 16, 16)

    def test_build_discriminator_has_classifier(self):
        image = FeatureMapShape.image(3, 16, 16)
        layers = conv_stack(channel_plan=[8, 16], kernel=4, stride=2, padding=1)
        disc = build_discriminator("d", image, layers)
        assert disc.output_shape.num_elements == 1
        assert disc.binding("classifier_fc") is not None
