"""The static µop-program verifier and the repo lints.

The centrepiece is the mutation-coverage suite: for EVERY check id in the
catalog there is a deliberately corrupted program that must trigger exactly
that check — so a verifier pass can never silently stop detecting anything.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import IsaError, ProgramEncodingError
from repro.isa.encoding import encode_global_uop
from repro.isa.program import MicroProgram
from repro.isa.uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)
from repro.staticcheck import (
    CATALOG,
    LintError,
    MachineModel,
    Severity,
    check_ids,
    max_severity,
    run_check_grid,
    run_lints,
    verify_program,
    verify_words,
)

INPUT = AddressGenerator.INPUT
WEIGHT = AddressGenerator.WEIGHT
OUTPUT = AddressGenerator.OUTPUT

MAC = ExecuteUop(op=ExecuteOp.MAC)
ACT = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
NOP = ExecuteUop(op=ExecuteOp.NOP)


def cfg_block(generator, *, pv=0, addr=0, offset=0, step=1, end=2, repeat=1):
    """The canonical five-cfg-then-start sequence for one generator."""
    return [
        AccessCfg(pv_index=pv, generator=generator, register=ConfigRegister.ADDR, immediate=addr),
        AccessCfg(pv_index=pv, generator=generator, register=ConfigRegister.OFFSET, immediate=offset),
        AccessCfg(pv_index=pv, generator=generator, register=ConfigRegister.STEP, immediate=step),
        AccessCfg(pv_index=pv, generator=generator, register=ConfigRegister.END, immediate=end),
        AccessCfg(pv_index=pv, generator=generator, register=ConfigRegister.REPEAT, immediate=repeat),
        AccessStart(pv_index=pv, generator=generator),
    ]


def make_program(global_uops, local=(), num_pvs=1, name="t"):
    return MicroProgram(
        name=name,
        num_pvs=num_pvs,
        local_uops=tuple(tuple(buffer) for buffer in local)
        or tuple(() for _ in range(num_pvs)),
        global_uops=tuple(global_uops),
    )


def valid_program():
    """A single-PV program that drains every address it produces."""
    stream = (
        cfg_block(INPUT, end=2)
        + cfg_block(WEIGHT, end=2)
        + cfg_block(OUTPUT, end=1)
        + [RepeatUop(count=2), MAC, ACT]
    )
    return make_program(stream)


def _unsafe_replace_stream(program, global_uops):
    """Swap in a µop stream bypassing MicroProgram's own validation, to
    reach the verifier checks that guard against corrupted images."""
    object.__setattr__(program, "global_uops", tuple(global_uops))
    return program


def ids_of(findings):
    return {finding.check_id for finding in findings}


# ----------------------------------------------------------------------
# Baseline behaviour
# ----------------------------------------------------------------------
class TestVerifierBaseline:
    def test_valid_program_is_clean(self):
        assert verify_program(valid_program()) == []

    def test_findings_are_ordered_and_attributed(self):
        program = make_program(
            [AccessStop(pv_index=0, generator=INPUT), AccessStop(pv_index=0, generator=WEIGHT)]
        )
        findings = verify_program(program)
        assert [f.index for f in findings] == [0, 1]
        assert all(f.check_id == "stop-without-start" for f in findings)
        assert all(f.program == "t" for f in findings)
        assert all(f.mnemonic == "access.stop" for f in findings)

    def test_finding_renders_index_mnemonic_check_and_message(self):
        finding = verify_program(
            make_program([AccessStop(pv_index=0, generator=INPUT)])
        )[0]
        rendered = str(finding)
        assert "stop-without-start" in rendered
        assert "[0] access.stop" in rendered
        record = finding.describe()
        assert record["severity"] == "error"
        assert record["index"] == 0

    def test_select_restricts_check_ids(self):
        program = make_program([AccessStop(pv_index=0, generator=INPUT)])
        assert verify_program(program, select=["dead-uop"]) == []
        assert ids_of(verify_program(program, select=["stop-without-start"])) == {
            "stop-without-start"
        }

    def test_severities_and_max_severity(self):
        assert max_severity([]) is None
        clean = verify_program(valid_program())
        assert max_severity(clean) is None
        errors = verify_program(make_program([MAC]))
        assert max_severity(errors) is Severity.ERROR

    def test_catalog_ids_are_stable(self):
        assert check_ids() == tuple(sorted(CATALOG))
        assert len(CATALOG) == 16


# ----------------------------------------------------------------------
# Mutation coverage: every check id must fire on a corrupted program
# ----------------------------------------------------------------------
def _mutant_cfg_def_before_use():
    return make_program([AccessStart(pv_index=0, generator=INPUT)])


def _mutant_cfg_invalid_at_start():
    return make_program(cfg_block(INPUT, step=3, end=2))  # Step > End


def _mutant_reconfigure_running():
    stream = cfg_block(INPUT, end=2) + [
        AccessCfg(pv_index=0, generator=INPUT, register=ConfigRegister.END, immediate=4)
    ]
    return make_program(stream)


def _mutant_stop_without_start():
    return make_program([AccessStop(pv_index=0, generator=INPUT)])


def _mutant_addr_range_overflow():
    return make_program(cfg_block(INPUT, offset=10_000, end=2))


def _mutant_pv_index_range():
    return _unsafe_replace_stream(
        valid_program(),
        [AccessCfg(pv_index=9, generator=INPUT, register=ConfigRegister.ADDR, immediate=0)],
    )


def _mutant_local_index_range():
    program = make_program([], local=[[MAC]])
    return _unsafe_replace_stream(program, [MimdExecute(local_indices=(3,))])


def _mutant_local_buffer_overflow():
    overful = [RepeatUop(count=n + 1) for n in range(17)]  # 17 distinct > 16 entries
    return make_program([], local=[overful])


def _mutant_repeat_count():
    return make_program([MimdLoad(pv_index=0, destination="repeat", immediate=0)])


def _mutant_repeat_default():
    stream = (
        cfg_block(INPUT, end=1)
        + cfg_block(WEIGHT, end=1)
        + [RepeatUop(count=0), MAC]
    )
    return make_program(stream)


def _mutant_repeat_pairing():
    return make_program([RepeatUop(count=2), RepeatUop(count=2)])


def _mutant_execute_starved():
    return make_program([MAC])  # nothing started, nothing to consume


def _mutant_unconsumed_addresses():
    return make_program(cfg_block(INPUT, end=2))


def _mutant_dead_uop():
    return make_program([], local=[[MAC]])


def _mutant_roundtrip_divergence():
    bad_act = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
    object.__setattr__(bad_act, "activation", "swish")  # unknown activation
    return make_program([bad_act])


MUTANTS = {
    "cfg-def-before-use": _mutant_cfg_def_before_use,
    "cfg-invalid-at-start": _mutant_cfg_invalid_at_start,
    "reconfigure-running": _mutant_reconfigure_running,
    "stop-without-start": _mutant_stop_without_start,
    "addr-range-overflow": _mutant_addr_range_overflow,
    "pv-index-range": _mutant_pv_index_range,
    "local-index-range": _mutant_local_index_range,
    "local-buffer-overflow": _mutant_local_buffer_overflow,
    "repeat-count": _mutant_repeat_count,
    "repeat-default": _mutant_repeat_default,
    "repeat-pairing": _mutant_repeat_pairing,
    "execute-starved": _mutant_execute_starved,
    "unconsumed-addresses": _mutant_unconsumed_addresses,
    "dead-uop": _mutant_dead_uop,
    "roundtrip-divergence": _mutant_roundtrip_divergence,
}


class TestMutationCoverage:
    @pytest.mark.parametrize("check_id", sorted(MUTANTS))
    def test_corrupted_program_triggers_check(self, check_id):
        findings = verify_program(MUTANTS[check_id]())
        assert check_id in ids_of(findings), (
            f"mutant for {check_id} produced {sorted(ids_of(findings))}"
        )

    def test_mode_flag_fires_on_flipped_mode_bit(self):
        # mode-flag lives at the word level: flip bit 68 of an encoded
        # access word so the mode bit contradicts the opcode group.
        word = encode_global_uop(
            AccessStart(pv_index=0, generator=INPUT), num_pvs=1
        )
        corrupted = word | (1 << 68)
        findings = verify_words([corrupted], num_pvs=1)
        assert ids_of(findings) == {"mode-flag"}
        assert verify_words([word], num_pvs=1) == []

    def test_every_catalog_id_has_a_mutant(self):
        assert set(MUTANTS) | {"mode-flag"} == set(check_ids())

    def test_trailing_repeat_is_a_pairing_error(self):
        findings = verify_program(make_program([RepeatUop(count=2)]))
        assert "repeat-pairing" in ids_of(findings)

    def test_oversized_repeat_count_is_flagged(self):
        findings = verify_program(make_program([RepeatUop(count=1 << 12), MAC]))
        assert "repeat-count" in ids_of(findings)

    def test_restart_after_drain_is_legal(self):
        stream = (
            cfg_block(INPUT, end=1)
            + cfg_block(WEIGHT, end=1)
            + [MAC]
            + cfg_block(INPUT, end=1)
            + cfg_block(WEIGHT, end=1)
            + [MAC]
        )
        assert verify_program(make_program(stream)) == []

    def test_mimd_load_seeds_repeat_register(self):
        stream = (
            cfg_block(INPUT, end=3)
            + cfg_block(WEIGHT, end=3)
            + [MimdLoad(pv_index=0, destination="repeat", immediate=3)]
            + [RepeatUop(count=0), MAC]
        )
        assert verify_program(make_program(stream)) == []


# ----------------------------------------------------------------------
# Machine geometry
# ----------------------------------------------------------------------
class TestMachineModel:
    def test_defaults_mirror_pe_buffer_sizing(self):
        model = MachineModel.from_config()
        assert model.num_pvs == 16
        assert model.input_buffer_words == 64  # max(12 entries, 64)
        assert model.weight_buffer_words == 224
        assert model.buffer_words(OUTPUT) == 64

    def test_executor_sizing_tracks_output_columns(self):
        model = MachineModel.for_executor(num_pvs=4, pes_per_pv=4, output_columns=40)
        assert model.output_buffer_words == 40
        assert model.input_buffer_words == 4096

    def test_overflow_threshold_is_exact(self):
        # end exactly at capacity is legal; one past is not.
        capacity = MachineModel.from_config().input_buffer_words
        ok = cfg_block(INPUT, offset=capacity - 2, end=2) + cfg_block(WEIGHT, end=2) + [
            RepeatUop(count=2),
            MAC,
        ]
        assert "addr-range-overflow" not in ids_of(verify_program(make_program(ok)))
        bad = cfg_block(INPUT, offset=capacity - 1, end=2)
        assert "addr-range-overflow" in ids_of(verify_program(make_program(bad)))


# ----------------------------------------------------------------------
# Compiled-program grid (the `repro check` core)
# ----------------------------------------------------------------------
class TestCheckGrid:
    def test_dcgan_grid_is_clean_in_both_modes(self):
        report = run_check_grid(["dcgan"], ["ganax"])
        assert report.ok
        assert report.findings == ()
        assert report.programs > 0
        # 9 compilable layers x 2 modes
        assert len(report.entries) == 18
        assert {entry.skip_zeros for entry in report.entries} == {True, False}

    def test_grid_report_describe_is_json_ready(self):
        import json

        report = run_check_grid(["dcgan"], ["ganax"], layer="conv5")
        payload = report.describe()
        json.dumps(payload)  # must not raise
        assert payload["ok"] is True
        assert payload["cells"] == 2

    def test_unknown_accelerator_is_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            run_check_grid(["dcgan"], ["definitely-not-real"])


# ----------------------------------------------------------------------
# Encoding diagnostics (satellite: errors carry program offsets)
# ----------------------------------------------------------------------
class TestEncodingDiagnostics:
    def test_global_encoding_error_carries_offset_and_uop(self):
        program = make_program([RepeatUop(count=1 << 12), MAC])
        with pytest.raises(ProgramEncodingError) as excinfo:
            program.encoded_global_words()
        error = excinfo.value
        assert isinstance(error, IsaError)
        assert error.program == "t"
        assert "global µop 0" in error.location
        assert "RepeatUop" in error.uop_repr

    def test_local_encoding_error_names_pv_and_index(self):
        program = make_program([], local=[[RepeatUop(count=1 << 12)]])
        with pytest.raises(ProgramEncodingError) as excinfo:
            program.encoded_local_words()
        assert "PV 0 local µop 0" in excinfo.value.location

    def test_disassembly_roundtrips_through_records(self):
        program = valid_program()
        records = program.uop_records()
        assert records["program"] == "t"
        assert len(records["global"]) == len(program.global_uops)
        text = program.disassemble()
        for record in records["global"]:
            assert record["text"] in text


# ----------------------------------------------------------------------
# Repo lints
# ----------------------------------------------------------------------
def _write(tmp_path, name, body):
    path = tmp_path / name
    path.write_text(textwrap.dedent(body))
    return path


class TestLints:
    def test_wallclock_flagged_in_cache_module(self, tmp_path):
        path = _write(
            tmp_path,
            "result_cache.py",
            """
            import time

            def key_for(job):
                return (job.name, time.time())
            """,
        )
        findings = run_lints([path])
        assert [f.check_id for f in findings] == ["wallclock-in-fingerprint"]

    def test_wallclock_flagged_in_fingerprint_function_anywhere(self, tmp_path):
        path = _write(
            tmp_path,
            "anything.py",
            """
            from datetime import datetime

            def model_fingerprint(model):
                return f"{model}-{datetime.now()}"
            """,
        )
        assert ids_of_lint(run_lints([path])) == {"wallclock-in-fingerprint"}

    def test_monotonic_clock_is_allowed(self, tmp_path):
        path = _write(
            tmp_path,
            "cache.py",
            """
            import time

            def age(entry):
                return time.monotonic() - entry.created
            """,
        )
        assert run_lints([path]) == []

    def test_unlocked_write_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "runner_state.py",
            """
            import threading

            class Tracker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._count += 1

                def reset(self):
                    self._count = 0
            """,
        )
        findings = run_lints([path])
        assert [f.check_id for f in findings] == ["unlocked-state-write"]
        assert "reset" in findings[0].message

    def test_locked_suffix_methods_are_exempt(self, tmp_path):
        path = _write(
            tmp_path,
            "runner_state.py",
            """
            import threading

            class Tracker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def bump(self):
                    with self._lock:
                        self._reset_locked()

                def _reset_locked(self):
                    self._count = 0
            """,
        )
        assert run_lints([path]) == []

    def test_record_without_schema_version_flagged(self, tmp_path):
        path = _write(
            tmp_path,
            "wire.py",
            """
            def job_record(job):
                return {"type": "job", "name": job.name}
            """,
        )
        assert ids_of_lint(run_lints([path])) == {"record-schema-version"}

    def test_stamped_and_literal_records_pass(self, tmp_path):
        path = _write(
            tmp_path,
            "wire.py",
            """
            from proto import stamp

            def job_record(job):
                return stamp({"type": "job", "name": job.name})

            class Event:
                def describe(self):
                    return {"type": "event", "schema_version": 3}
            """,
        )
        assert run_lints([path]) == []

    def test_unfrozen_isa_dataclass_flagged(self, tmp_path):
        isa_dir = tmp_path / "isa"
        isa_dir.mkdir()
        path = _write(
            isa_dir,
            "uops.py",
            """
            from dataclasses import dataclass

            @dataclass
            class LooseUop:
                op: int

            @dataclass(frozen=True)
            class GoodUop:
                op: int
            """,
        )
        findings = run_lints([path])
        assert [f.check_id for f in findings] == ["unfrozen-isa-dataclass"]
        assert "LooseUop" in findings[0].message

    def test_waiver_comment_silences_named_id(self, tmp_path):
        path = _write(
            tmp_path,
            "cache.py",
            """
            import time

            def key_for(job):
                # lint: allow(wallclock-in-fingerprint) test fixture on purpose
                return (job.name, time.time())
            """,
        )
        assert run_lints([path]) == []

    def test_waiver_does_not_silence_other_ids(self, tmp_path):
        path = _write(
            tmp_path,
            "cache.py",
            """
            import time

            def key_for(job):
                # lint: allow(dead-code-or-whatever)
                return (job.name, time.time())
            """,
        )
        assert ids_of_lint(run_lints([path])) == {"wallclock-in-fingerprint"}

    def test_unknown_select_id_raises(self, tmp_path):
        with pytest.raises(LintError):
            run_lints([tmp_path], select=["not-a-lint"])

    def test_repo_source_tree_is_lint_clean(self):
        from pathlib import Path

        src = Path(__file__).parent.parent / "src" / "repro"
        assert run_lints([src]) == []


def ids_of_lint(findings):
    return {finding.check_id for finding in findings}
