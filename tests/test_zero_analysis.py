"""Unit tests for the structural zero / pattern analysis."""

from __future__ import annotations

import pytest

from repro.errors import LayerError
from repro.nn.layers import ConvLayer, TransposedConvLayer
from repro.nn.shapes import FeatureMapShape
from repro.nn.zero_analysis import (
    analyze_transposed_conv,
    count_consequential_macs_bruteforce,
    distinct_row_patterns,
    layer_zero_stats,
    transposed_conv_inconsequential_fraction,
)


class TestAnalyzeTransposedConv:
    def test_paper_example_two_patterns(self, example_tconv_layer, example_tconv_input):
        analysis = analyze_transposed_conv(example_tconv_layer, example_tconv_input)
        # Section II: "there are only two distinct patterns in the output row
        # computations" for the stride-2 example.
        assert analysis.num_patterns == 2

    def test_paper_example_filter_rows_per_pattern(self, example_tconv_layer, example_tconv_input):
        analysis = analyze_transposed_conv(example_tconv_layer, example_tconv_input)
        rows_used = sorted(p.filter_rows_used for p in analysis.row_patterns)
        # Even rows use 3 filter rows (1st/3rd/5th), odd rows use 2 (2nd/4th),
        # matching the accumulation-depth reduction from 5 to 2-3 cycles.
        assert rows_used == [2, 3]

    def test_paper_example_pattern_contents(self, example_tconv_layer, example_tconv_input):
        analysis = analyze_transposed_conv(example_tconv_layer, example_tconv_input)
        patterns = {p.phase: p.consequential_filter_rows for p in analysis.row_patterns}
        assert patterns[0] == (0, 2, 4)
        assert patterns[1] == (1, 3)

    def test_consequential_fraction_matches_layer(self, example_tconv_layer, example_tconv_input):
        analysis = analyze_transposed_conv(example_tconv_layer, example_tconv_input)
        assert analysis.consequential_macs == example_tconv_layer.consequential_macs(
            example_tconv_input
        )
        assert analysis.total_macs == example_tconv_layer.total_macs(example_tconv_input)

    def test_rows_per_pattern_cover_all_rows(self, example_tconv_layer, example_tconv_input):
        analysis = analyze_transposed_conv(example_tconv_layer, example_tconv_input)
        assert sum(analysis.rows_per_pattern) == analysis.output_shape.spatial[0]

    def test_stride1_single_pattern(self):
        layer = TransposedConvLayer(name="t", out_channels=1, kernel=3, stride=1, padding=1)
        analysis = analyze_transposed_conv(layer, FeatureMapShape.image(1, 8, 8))
        assert analysis.num_patterns == 1
        assert analysis.row_patterns[0].filter_rows_used == 3

    def test_stride3_three_patterns(self):
        layer = TransposedConvLayer(name="t", out_channels=1, kernel=6, stride=3, padding=2)
        analysis = analyze_transposed_conv(layer, FeatureMapShape.image(1, 5, 5))
        assert analysis.num_patterns == 3

    def test_rejects_conv_layer(self):
        layer = ConvLayer(name="c", out_channels=1, kernel=3, stride=1, padding=1)
        with pytest.raises(LayerError):
            analyze_transposed_conv(layer, FeatureMapShape.image(1, 8, 8))


class TestBruteForceCrossCheck:
    @pytest.mark.parametrize(
        "kernel,stride,padding,size",
        [
            (5, 2, 2, 4),
            (4, 2, 1, 4),
            (4, 2, 1, 6),
            (3, 1, 1, 5),
            (6, 3, 2, 3),
            (5, 2, 1, 5),
        ],
    )
    def test_exact_count_matches_bruteforce_2d(self, kernel, stride, padding, size):
        layer = TransposedConvLayer(
            name="t", out_channels=2, kernel=kernel, stride=stride, padding=padding
        )
        shape = FeatureMapShape.image(3, size, size)
        assert layer.consequential_macs(shape) == count_consequential_macs_bruteforce(
            layer, shape
        )

    def test_exact_count_matches_bruteforce_3d(self):
        layer = TransposedConvLayer(
            name="t", out_channels=1, kernel=4, stride=2, padding=1, rank=3
        )
        shape = FeatureMapShape.volume(1, 3, 3, 3)
        assert layer.consequential_macs(shape) == count_consequential_macs_bruteforce(
            layer, shape
        )

    def test_exact_count_matches_bruteforce_anisotropic(self):
        layer = TransposedConvLayer(
            name="t", out_channels=1, kernel=(5, 3), stride=(2, 1), padding=(2, 1)
        )
        shape = FeatureMapShape.image(1, 4, 6)
        assert layer.consequential_macs(shape) == count_consequential_macs_bruteforce(
            layer, shape
        )


class TestAggregation:
    def test_layer_zero_stats(self, example_tconv_layer, example_tconv_input):
        stats = layer_zero_stats(example_tconv_layer, example_tconv_input)
        assert stats.is_transposed
        assert stats.total_macs == stats.consequential_macs + stats.inconsequential_macs
        assert 0.0 < stats.inconsequential_fraction < 1.0

    def test_conv_layer_stats_fully_consequential(self):
        layer = ConvLayer(name="c", out_channels=2, kernel=3, stride=1, padding=1)
        stats = layer_zero_stats(layer, FeatureMapShape.image(1, 8, 8))
        assert stats.inconsequential_macs == 0
        assert not stats.is_transposed

    def test_network_fraction_ignores_conv_layers(self):
        conv = ConvLayer(name="c", out_channels=4, kernel=3, stride=1, padding=1)
        tconv = TransposedConvLayer(name="t", out_channels=4, kernel=4, stride=2, padding=1)
        shape = FeatureMapShape.image(4, 8, 8)
        with_conv = transposed_conv_inconsequential_fraction(
            [(conv, shape), (tconv, shape)]
        )
        only_tconv = transposed_conv_inconsequential_fraction([(tconv, shape)])
        assert with_conv == pytest.approx(only_tconv)

    def test_network_fraction_empty_is_zero(self):
        assert transposed_conv_inconsequential_fraction([]) == 0.0

    def test_distinct_row_patterns_counts(self, example_tconv_layer, example_tconv_input):
        patterns = distinct_row_patterns(example_tconv_layer, example_tconv_input)
        assert len(patterns) == 2
        assert sum(patterns.values()) == 7  # all 7 output rows covered
