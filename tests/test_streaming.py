"""Tests for the streaming execution API: submit / BatchHandle / events.

The load-bearing guarantees of the redesign:

* **streaming-vs-batch parity** — the same jobs produce identical result
  sets and identical cache accounting whether consumed through
  ``run_jobs()`` (the blocking wrapper) or ``submit()`` +
  ``as_completed()``/``iter_results()``, on every registered backend
  (serial, process-pool, asyncio) and regardless of completion order;
* **event-sequence invariants** — every submitted job emits ``scheduled``
  first and then exactly one terminal event (``cache-hit`` / ``completed``
  / ``failed`` / ``cancelled``), with ``started`` strictly between for
  executed jobs;
* **cancellation** — ``BatchHandle.cancel()`` stops unstarted work, keeps
  finished results consumable, and never corrupts accounting;
* **streaming consumers** — ``Session.stream_compare``,
  ``ParameterSweep.iter_points`` and the DSE streaming evaluator agree
  value-for-value with their batch counterparts;
* (satellite) **concurrent disk-cache writers** never publish a partial
  entry — the atomic temp-file + rename protocol is exercised by two real
  writer processes hammering one key.
"""

from __future__ import annotations

import multiprocessing

import pytest
from concurrent.futures import CancelledError

from repro.accelerators import register_accelerator, unregister_accelerator
from repro.analysis.sweep import ParameterSweep
from repro.config import ArchitectureConfig
from repro.dse import DesignSpaceExplorer, HillClimbSearch
from repro.errors import ConfigurationError
from repro.runner import (
    EVENT_KINDS,
    TERMINAL_EVENT_KINDS,
    AsyncioBackend,
    DiskResultCache,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    backend_names,
    get_backend,
)
from repro.session import Session
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def small_models():
    return [get_workload("DCGAN"), get_workload("MAGAN"), get_workload("ArtGAN")]


@pytest.fixture(scope="module", params=["serial", "process-pool", "asyncio"])
def each_backend(request):
    """Every registered backend, shared across this module's parity tests."""
    backend = get_backend(request.param, max_workers=2)
    yield backend
    backend.close()


def pair_jobs(models, config=None, options=None):
    return [
        job
        for model in models
        for job in SimulationJob.comparison_pair(model, config, options)
    ]


@pytest.fixture(scope="module")
def reference_results(small_models):
    """Ground truth: the batch path on a fresh serial runner."""
    return SimulationRunner(backend=SerialBackend()).run_jobs(pair_jobs(small_models))


# ----------------------------------------------------------------------
# Streaming vs batch parity (all backends)
# ----------------------------------------------------------------------
class TestStreamingParity:
    def test_as_completed_matches_batch_results(
        self, small_models, each_backend, reference_results
    ):
        jobs = pair_jobs(small_models)
        runner = SimulationRunner(backend=each_backend)
        handle = runner.submit(jobs)
        by_index = {}
        for completion in handle.as_completed():
            assert completion.index not in by_index  # delivered exactly once
            by_index[completion.index] = completion.result
        assert sorted(by_index) == list(range(len(jobs)))
        for index, result in by_index.items():
            assert result == reference_results[index]
        assert handle.done()
        assert handle.counts()["completed"] == len(jobs)

    def test_iter_results_preserves_submission_order(
        self, small_models, each_backend, reference_results
    ):
        runner = SimulationRunner(backend=each_backend)
        streamed = list(runner.submit(pair_jobs(small_models)).iter_results())
        assert streamed == reference_results

    def test_cache_stats_identical_regardless_of_completion_order(
        self, small_models, each_backend
    ):
        batch_runner = SimulationRunner(backend=SerialBackend())
        batch_runner.run_jobs(pair_jobs(small_models) * 2)
        batch_runner.run_jobs(pair_jobs(small_models))

        stream_runner = SimulationRunner(backend=each_backend)
        list(stream_runner.submit(pair_jobs(small_models) * 2).as_completed())
        list(stream_runner.submit(pair_jobs(small_models)).as_completed())

        assert stream_runner.stats.as_dict() == batch_runner.stats.as_dict()

    def test_warm_submissions_resolve_without_the_backend(self, small_models):
        class ExplodingBackend(SerialBackend):
            def submit_jobs(self, jobs):
                raise AssertionError("a warm batch must not reach the backend")

        jobs = pair_jobs(small_models)
        runner = SimulationRunner(backend=SerialBackend())
        runner.run_jobs(jobs)
        runner._backend = ExplodingBackend()
        handle = runner.submit(jobs)
        assert handle.done()  # resolved entirely at submission
        completions = list(handle.as_completed())
        assert {c.provenance for c in completions} == {"cache"}

    def test_duplicates_share_the_primary_result_object(self, dcgan_model):
        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model)) * 2
        results = runner.submit(jobs).results()
        assert results[0] is results[2]
        assert results[1] is results[3]


# ----------------------------------------------------------------------
# Event-sequence invariants
# ----------------------------------------------------------------------
class TestEventInvariants:
    def collect(self, runner, jobs):
        events = []
        handle = runner.submit(jobs, on_event=events.append)
        handle.results()
        return events

    def events_for(self, events, index):
        return [e for e in events if e.index == index]

    def test_every_job_terminates_exactly_once(self, small_models):
        runner = SimulationRunner()
        jobs = pair_jobs(small_models) * 2  # duplicates in-batch
        cold = self.collect(runner, jobs)
        warm = self.collect(runner, jobs)
        for events in (cold, warm):
            for index in range(len(jobs)):
                sequence = self.events_for(events, index)
                assert sequence[0].kind == "scheduled"
                kinds = [e.kind for e in sequence]
                assert all(kind in EVENT_KINDS for kind in kinds)
                terminals = [e for e in sequence if e.is_terminal]
                assert len(terminals) == 1, (index, kinds)
                assert terminals[0] is sequence[-1]
                assert terminals[0].kind in ("cache-hit", "completed")

    def test_cold_executed_jobs_emit_started_before_completed(self, dcgan_model):
        events = self.collect(
            SimulationRunner(), list(SimulationJob.comparison_pair(dcgan_model))
        )
        for index in range(2):
            kinds = [e.kind for e in self.events_for(events, index)]
            assert kinds == ["scheduled", "started", "completed"]

    def test_duplicates_mark_deduped_and_mirror_the_primary(self, dcgan_model):
        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model)) * 2
        events = self.collect(runner, jobs)
        for index in (2, 3):
            sequence = self.events_for(events, index)
            assert [e.kind for e in sequence] == ["scheduled", "deduped", "completed"]
            assert sequence[-1].provenance == "deduplicated"
            assert sequence[-1].result is not None

    def test_all_scheduled_events_precede_any_terminal(self, dcgan_model):
        """Listeners learn the batch size before anything resolves."""
        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model))
        runner.run_jobs(jobs)  # warm: every job would terminate at submit
        events = self.collect(runner, jobs)
        last_scheduled = max(
            i for i, e in enumerate(events) if e.kind == "scheduled"
        )
        first_terminal = min(i for i, e in enumerate(events) if e.is_terminal)
        assert last_scheduled < first_terminal

    def test_no_job_claims_started_and_then_cancels(self, small_models):
        """'started' means executing, so started jobs never cancel (any backend)."""
        from repro.runner import ProcessPoolBackend

        with SimulationRunner(backend=ProcessPoolBackend(max_workers=1)) as runner:
            events = []
            handle = runner.submit(pair_jobs(small_models), on_event=events.append)
            handle.cancel()
            list(handle.as_completed())
        started = {e.index for e in events if e.kind == "started"}
        cancelled = {e.index for e in events if e.kind == "cancelled"}
        assert not (started & cancelled)

    def test_warm_jobs_terminate_as_cache_hits(self, dcgan_model):
        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model))
        runner.run_jobs(jobs)
        events = self.collect(runner, jobs)
        for index in range(2):
            sequence = self.events_for(events, index)
            assert [e.kind for e in sequence] == ["scheduled", "cache-hit"]
            assert sequence[-1].provenance == "cache"

    def test_subscribe_observes_batches_until_unsubscribed(self, dcgan_model):
        runner = SimulationRunner()
        events = []
        unsubscribe = runner.subscribe(events.append)
        runner.run_jobs([SimulationJob.comparison_pair(dcgan_model)[0]])
        assert {e.kind for e in events} == {"scheduled", "started", "completed"}
        seen = len(events)
        unsubscribe()
        runner.run_jobs([SimulationJob.comparison_pair(dcgan_model)[1]])
        assert len(events) == seen

    def test_raising_listener_does_not_corrupt_the_batch(self, dcgan_model):
        def broken_listener(event):
            raise RuntimeError("observer bug")

        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model))
        handle = runner.submit(jobs, on_event=broken_listener)
        assert len(handle.results()) == 2


# ----------------------------------------------------------------------
# Failure propagation
# ----------------------------------------------------------------------
def _failing_factory(config=None, options=None):
    raise RuntimeError("injected accelerator failure")


class TestFailedJobs:
    @pytest.fixture()
    def failing_job(self, dcgan_model, paper_config, options):
        register_accelerator("test-streaming-boom", version="1")(_failing_factory)
        try:
            yield SimulationJob(
                dcgan_model, "test-streaming-boom", paper_config, options
            )
        finally:
            unregister_accelerator("test-streaming-boom")

    def test_failed_event_carries_the_error(self, dcgan_model, failing_job):
        runner = SimulationRunner(backend=SerialBackend())
        good = SimulationJob.comparison_pair(dcgan_model)[0]
        events = []
        handle = runner.submit([good, failing_job], on_event=events.append)
        completions = list(handle.as_completed(raise_on_error=False))
        assert len(completions) == 2
        failed = next(c for c in completions if c.error is not None)
        assert failed.result is None
        assert "injected accelerator failure" in str(failed.error)
        terminal_kinds = {e.index: e.kind for e in events if e.is_terminal}
        assert terminal_kinds == {0: "completed", 1: "failed"}
        assert handle.counts()["failed"] == 1

    def test_as_completed_raises_by_default(self, failing_job):
        runner = SimulationRunner(backend=SerialBackend())
        with pytest.raises(RuntimeError, match="injected accelerator failure"):
            list(runner.submit([failing_job]).as_completed())

    def test_run_jobs_wrapper_raises_like_the_old_batch_api(self, failing_job):
        runner = SimulationRunner(backend=SerialBackend())
        with pytest.raises(RuntimeError, match="injected accelerator failure"):
            runner.run_jobs([failing_job])

    def test_failures_are_not_cached(self, failing_job):
        runner = SimulationRunner(backend=SerialBackend())
        with pytest.raises(RuntimeError):
            runner.run_jobs([failing_job])
        assert len(runner.cache) == 0
        assert runner.stats.stores == 0


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
class TestCancellation:
    def test_cancel_keeps_finished_results_and_stops_the_rest(self, small_models):
        runner = SimulationRunner(backend=SerialBackend())
        jobs = pair_jobs(small_models)  # 6 distinct jobs
        handle = runner.submit(jobs)
        stream = handle.as_completed()
        first = next(stream)
        second = next(stream)
        cancelled = handle.cancel()
        assert cancelled == len(jobs) - 2
        assert list(stream) == []  # cancelled jobs are skipped, not yielded
        counts = handle.counts()
        assert counts["completed"] == 2
        assert counts["cancelled"] == len(jobs) - 2
        assert counts["pending"] == 0
        assert handle.done()
        # the finished results stayed consumable and correct
        reference = SimulationRunner().run_jobs(jobs)
        assert first.result == reference[first.index]
        assert second.result == reference[second.index]
        # only the executed jobs were stored
        assert runner.stats.stores == 2

    def test_results_after_cancel_raise_cancelled_error(self, small_models):
        runner = SimulationRunner(backend=SerialBackend())
        handle = runner.submit(pair_jobs(small_models))
        assert handle.cancel() == 6
        with pytest.raises(CancelledError):
            handle.results()

    def test_cancel_is_idempotent_and_noop_when_done(self, dcgan_model):
        runner = SimulationRunner()
        handle = runner.submit(list(SimulationJob.comparison_pair(dcgan_model)))
        handle.results()
        assert handle.cancel() == 0
        assert handle.counts()["completed"] == 2

    def test_cancel_with_a_pool_backend_accounts_every_job(self, small_models):
        from repro.runner import ProcessPoolBackend

        with SimulationRunner(backend=ProcessPoolBackend(max_workers=1)) as runner:
            handle = runner.submit(pair_jobs(small_models))
            handle.cancel()
            drained = list(handle.as_completed())
        counts = handle.counts()
        assert counts["pending"] == 0
        assert counts["completed"] + counts["cancelled"] == 6
        assert len(drained) == counts["completed"]

    def test_cancel_never_discards_an_executing_jobs_result(self, small_models):
        """Cross-backend contract: cancel() only wins for unstarted jobs.

        Every completion an active backend delivers after a cancel must be a
        genuinely executed (or cached) result — a job that began executing
        is never reported cancelled, on any backend.
        """
        reference = SimulationRunner().run_jobs(pair_jobs(small_models))
        for name in ("process-pool", "asyncio"):
            backend = get_backend(name, max_workers=1)
            with SimulationRunner(backend=backend) as runner:
                handle = runner.submit(pair_jobs(small_models))
                stream = handle.as_completed()
                first = next(stream)  # at least one job has executed
                handle.cancel()
                drained = [first, *stream]
            counts = handle.counts()
            assert counts["pending"] == 0, name
            assert counts["completed"] == len(drained), name
            assert counts["completed"] + counts["cancelled"] == 6, name
            for completion in drained:
                assert completion.result == reference[completion.index], name


# ----------------------------------------------------------------------
# Streaming consumers
# ----------------------------------------------------------------------
class TestSessionStreaming:
    def test_stream_compare_matches_compare(self, small_models):
        batch = Session(runner=SimulationRunner()).compare(small_models)
        session = Session(runner=SimulationRunner())
        streamed = dict(session.stream_compare(small_models))
        assert set(streamed) == set(batch)
        for name in batch:
            assert streamed[name].generator_speedups() == batch[
                name
            ].generator_speedups()
            assert streamed[name].results == batch[name].results

    def test_stream_compare_serial_order_is_submission_order(self, small_models):
        session = Session(runner=SimulationRunner(backend=SerialBackend()))
        names = [name for name, _ in session.stream_compare(small_models)]
        assert names == [model.name for model in small_models]

    def test_submit_returns_the_raw_handle(self, small_models):
        session = Session(runner=SimulationRunner())
        handle = session.submit(small_models)
        assert len(handle) == 2 * len(small_models)
        assert len(handle.results()) == len(handle)

    def test_abandoning_the_stream_cancels_unstarted_jobs(self, small_models):
        runner = SimulationRunner(backend=SerialBackend())
        session = Session(runner=runner)
        stream = session.stream_compare(small_models)
        next(stream)  # first model only
        stream.close()
        # only the first model's pair executed; the rest never ran
        assert runner.stats.stores == 2

    def test_equivalent_spellings_stream_one_entry_like_batch(self):
        """A name and its spec-string spelling collapse to one streamed row."""
        spellings = ["DCGAN", "dcgan@64x64"]  # same model, same cache keys
        batch = Session(runner=SimulationRunner()).compare(spellings)
        streamed = list(
            Session(runner=SimulationRunner()).stream_compare(spellings)
        )
        assert len(streamed) == len(batch) == 1
        assert streamed[0][0] == "DCGAN"

    def test_name_collision_between_distinct_models_matches_batch(self):
        """Two different models sharing a name never mix in one group.

        The batch path's per-name dict slot keeps the *last* listed model;
        the stream must yield the same (single, unmixed) comparison.
        """
        import dataclasses

        impostor = dataclasses.replace(get_workload("MAGAN"), name="DCGAN")
        models = [get_workload("DCGAN"), impostor]
        batch = SimulationRunner().compare_accelerators(models)
        streamed = dict(
            SimulationRunner().stream_accelerators(models)
        )
        assert set(streamed) == set(batch) == {"DCGAN"}
        assert (
            streamed["DCGAN"].generator_speedups()
            == batch["DCGAN"].generator_speedups()
        )


class TestSweepStreaming:
    def test_iter_points_matches_run(self, small_models):
        values = (16.0, 64.0)
        batch = ParameterSweep(
            small_models[:2], runner=SimulationRunner()
        ).run("dram_bandwidth_bytes_per_cycle", values)
        streamed = list(
            ParameterSweep(small_models[:2], runner=SimulationRunner()).iter_points(
                "dram_bandwidth_bytes_per_cycle", values
            )
        )
        assert [p.label for p in streamed] == [p.label for p in batch]
        for s, b in zip(streamed, batch):
            assert s.config == b.config
            assert s.speedups == b.speedups
            assert s.energy_reductions == b.energy_reductions

    def test_iter_points_streams_one_point_per_config(self, dcgan_model):
        sweep = ParameterSweep([dcgan_model], runner=SimulationRunner())
        seen = []
        for point in sweep.iter_points("num_pvs", [8, 16]):
            seen.append(point.label)
        assert seen == ["num_pvs=8", "num_pvs=16"]

    def test_iter_points_handles_equivalent_model_spellings(self):
        """A name and its spec-string spelling collapse like the batch path."""
        models = [get_workload("DCGAN"), get_workload("dcgan@64x64")]
        batch = ParameterSweep(models, runner=SimulationRunner()).run(
            "num_pvs", [8, 16]
        )
        streamed = list(
            ParameterSweep(models, runner=SimulationRunner()).iter_points(
                "num_pvs", [8, 16]
            )
        )
        assert [p.label for p in streamed] == [p.label for p in batch]
        for s, b in zip(streamed, batch):
            assert s.speedups == b.speedups


class TestDseStreaming:
    def test_evaluate_stream_matches_evaluate(self, small_models):
        explorer = DesignSpaceExplorer(
            models=small_models[:2], runner=SimulationRunner(backend=SerialBackend())
        )
        space = explorer.space(fields=("num_pvs",), overrides={"num_pvs": (8, 16)})
        points = list(space.points())
        batch = explorer.evaluate(points)
        streamed = list(explorer.evaluate_stream(points))
        assert [p.point for p in streamed] == [p.point for p in batch]
        for s, b in zip(streamed, batch):
            assert s.objectives == b.objectives
            assert s.metrics == b.metrics

    def test_hillclimb_streaming_is_deterministic_on_serial(self, small_models):
        def run_search():
            explorer = DesignSpaceExplorer(
                models=small_models[:2],
                runner=SimulationRunner(backend=SerialBackend()),
            )
            space = explorer.space(
                fields=("num_pvs", "pes_per_pv"),
                overrides={"num_pvs": (4, 8, 16, 32), "pes_per_pv": (4, 8, 16)},
            )
            return explorer.explore(
                space=space, strategy=HillClimbSearch(seed=5), budget=6
            )

        first, second = run_search(), run_search()
        assert [p.label for p in first.evaluated] == [
            p.label for p in second.evaluated
        ]
        assert 1 <= len(first.evaluated) <= 6
        assert first.frontier.summary() == second.frontier.summary()

    def test_hillclimb_advances_before_exhausting_the_ring(self, small_models):
        """A strictly-improving first neighbour ends the ring early.

        The engine's trace only holds consumed evaluations, so with the
        streaming evaluator the number of evaluations can stay *below* what
        the batched whole-ring climb would have spent; at minimum the climb
        must never overshoot its budget.
        """
        explorer = DesignSpaceExplorer(
            models=small_models[:1], runner=SimulationRunner(backend=SerialBackend())
        )
        space = explorer.space(
            fields=("num_pvs", "pes_per_pv"),
            overrides={"num_pvs": (4, 8, 16, 32), "pes_per_pv": (4, 8, 16, 32)},
        )
        for seed in range(4):
            result = explorer.explore(
                space=space, strategy=HillClimbSearch(seed=seed), budget=8
            )
            assert 1 <= len(result.evaluated) <= 8


class TestExperimentProgress:
    def test_context_progress_hook_sees_every_event(self):
        from repro.experiments.base import ExperimentContext

        events = []
        context = ExperimentContext(
            runner=SimulationRunner(), models=["DCGAN"], progress=events.append
        )
        context.comparisons  # triggers the legacy two-way comparison
        kinds = {e.kind for e in events}
        assert "scheduled" in kinds
        assert kinds & TERMINAL_EVENT_KINDS
        seen = len(events)
        context.detach_progress()
        context.session.compare("MAGAN")
        assert len(events) == seen


# ----------------------------------------------------------------------
# Backend registry
# ----------------------------------------------------------------------
class TestBackendRegistry:
    def test_registered_names(self):
        assert set(backend_names()) == {"serial", "process-pool", "asyncio"}

    def test_get_backend_resolves_and_normalizes(self):
        backend = get_backend(" SERIAL ")
        assert backend.name == "serial"
        pooled = get_backend("process-pool", max_workers=3)
        assert pooled.max_workers == 3
        pooled.close()

    def test_unknown_backend_lists_registered_ones(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_backend("quantum")
        message = str(excinfo.value)
        for name in backend_names():
            assert name in message

    def test_asyncio_backend_close_is_idempotent(self, dcgan_model):
        backend = AsyncioBackend(max_workers=1)
        results = backend.run_jobs(list(SimulationJob.comparison_pair(dcgan_model)))
        assert len(results) == 2
        backend.close()
        backend.close()

    def test_asyncio_close_drains_in_flight_jobs(self, small_models):
        """Closing the backend mid-batch must settle every future, not hang."""
        runner = SimulationRunner(backend=AsyncioBackend(max_workers=1))
        handle = runner.submit(pair_jobs(small_models))
        runner.close()  # before consuming anything
        results = handle.results()  # must not block forever
        assert results == SimulationRunner().run_jobs(pair_jobs(small_models))
        assert handle.counts()["pending"] == 0

    def test_asyncio_close_after_cancel_destroys_no_pending_tasks(
        self, small_models, caplog
    ):
        """Cancel + close must drain the loop's tasks, not destroy them."""
        import logging

        with caplog.at_level(logging.ERROR, logger="asyncio"):
            runner = SimulationRunner(backend=AsyncioBackend(max_workers=1))
            handle = runner.submit(pair_jobs(small_models))
            next(handle.as_completed())
            handle.cancel()
            runner.close()
        assert handle.counts()["pending"] == 0
        assert not any(
            "Task was destroyed" in record.message for record in caplog.records
        )

    def test_pool_chunked_dispatch_preserves_parity(self, small_models):
        """Large batches chunk (old pool.map bound) and still stream correctly."""
        from repro.runner import ProcessPoolBackend

        jobs = [
            job
            for model in small_models
            for value in (8, 16)
            for job in SimulationJob.comparison_pair(
                model,
                ArchitectureConfig.paper_default().with_updates(num_pvs=value),
            )
        ]
        backend = ProcessPoolBackend(max_workers=1)
        assert backend._chunksize(len(jobs)) > 1  # the chunked path is live
        with SimulationRunner(backend=backend) as runner:
            handle = runner.submit(jobs)
            by_index = {c.index: c.result for c in handle.as_completed()}
        reference = SimulationRunner().run_jobs(jobs)
        assert [by_index[i] for i in range(len(jobs))] == reference


# ----------------------------------------------------------------------
# Satellite: concurrent disk-cache writers never publish a partial entry
# ----------------------------------------------------------------------
PAYLOAD_A = b"a" * 200_000
PAYLOAD_B = b"b" * 200_000
_HAMMER_KEY = "ab" + "0" * 62


def _hammer_cache(root: str, payload: bytes, iterations: int) -> None:
    cache = DiskResultCache(root)
    for _ in range(iterations):
        cache.put(_HAMMER_KEY, payload)


class TestDiskCacheConcurrentWriters:
    def test_two_writers_never_interleave_a_partial_entry(self, tmp_path):
        """Two processes hammer one key; every read sees a complete value."""
        context = multiprocessing.get_context()
        writers = [
            context.Process(
                target=_hammer_cache, args=(str(tmp_path), payload, 150)
            )
            for payload in (PAYLOAD_A, PAYLOAD_B)
        ]
        for process in writers:
            process.start()
        observed = 0
        try:
            while any(process.is_alive() for process in writers):
                # a fresh instance per read: no overlay, every get hits disk
                value = DiskResultCache(tmp_path).get(_HAMMER_KEY)
                if value is None:
                    # os.replace publishes atomically, so once an entry
                    # exists a miss could only mean a torn write was
                    # detected (get drops corrupt entries) — a failure here
                    assert observed == 0, "published entry vanished"
                    continue
                observed += 1
                assert value in (PAYLOAD_A, PAYLOAD_B)
        finally:
            for process in writers:
                process.join()
        assert all(process.exitcode == 0 for process in writers)
        final = DiskResultCache(tmp_path).get(_HAMMER_KEY)
        assert final in (PAYLOAD_A, PAYLOAD_B)
        assert observed > 0


# ----------------------------------------------------------------------
# Satellite: N server workers sharing one sharded DiskResultCache
# ----------------------------------------------------------------------
_FLEET_SIZE = 4
_FLEET_PAYLOAD_BYTES = 20_000
_LEGACY_FLEET_KEY = "ef" + "1" * 62


def _fleet_payload(worker_id: int) -> bytes:
    return bytes([worker_id % 256]) * _FLEET_PAYLOAD_BYTES


def _fleet_key(worker_id: int, slot: int) -> str:
    # distinct 2-char shard prefixes: the traffic spreads across shard dirs
    return f"{worker_id:x}{slot:x}" + "2" * 62


def _fleet_worker(root: str, worker_id: int, iterations: int) -> None:
    """One simulated service worker: interleaved put/get/prune on the cache.

    Any inconsistency (partial read, wrong payload, crash in prune) exits
    nonzero and fails the parent's exitcode assertion.
    """
    cache = DiskResultCache(root)
    payload = _fleet_payload(worker_id)
    neighbour = (worker_id + 1) % _FLEET_SIZE
    for i in range(iterations):
        cache.put(_fleet_key(worker_id, i % 8), payload)
        # a neighbour's entry is either absent (not written yet / pruned) or
        # complete — atomic publication means never a torn value
        value = DiskResultCache(root).get(_fleet_key(neighbour, i % 8))
        assert value is None or value == _fleet_payload(neighbour)
        # the legacy flat entry stays readable while workers race to
        # migrate it into its shard (prune may legitimately evict it later)
        legacy = DiskResultCache(root).get(_LEGACY_FLEET_KEY)
        assert legacy is None or legacy == b"legacy"
        if i % 10 == 7:
            # concurrent prunes race over the same files: entries vanishing
            # mid-pass must be tolerated, not raised
            cache.prune(max_bytes=12 * _FLEET_PAYLOAD_BYTES)


class TestDiskCacheWorkerFleet:
    def test_n_workers_share_one_sharded_cache(self, tmp_path):
        """A fleet of processes get/put/prune one cache without corruption."""
        import pickle

        # plant a pre-shard flat-layout entry for the fleet to read through
        (tmp_path / f"{_LEGACY_FLEET_KEY}.pkl").write_bytes(
            pickle.dumps(b"legacy", protocol=pickle.HIGHEST_PROTOCOL)
        )
        context = multiprocessing.get_context()
        workers = [
            context.Process(
                target=_fleet_worker, args=(str(tmp_path), worker_id, 60)
            )
            for worker_id in range(_FLEET_SIZE)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join()
        assert all(process.exitcode == 0 for process in workers)
        # the surviving cache is fully consistent: every entry readable,
        # accounting agrees with the filesystem
        cache = DiskResultCache(tmp_path)
        entries = list(cache._entry_paths())
        assert len(cache) == len(entries)
        assert cache.size_bytes() == sum(p.stat().st_size for p in entries)
        for worker_id in range(_FLEET_SIZE):
            for slot in range(8):
                value = cache.get(_fleet_key(worker_id, slot))
                assert value is None or value == _fleet_payload(worker_id)
