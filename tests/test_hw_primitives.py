"""Unit tests for FIFOs, scratchpads, DRAM, NoC and event counters."""

from __future__ import annotations

import pytest

from repro.errors import BufferError_, FifoError, HardwareError
from repro.hw.counters import EventCounters
from repro.hw.dram import DramModel, DramTraffic
from repro.hw.fifo import Fifo
from repro.hw.noc import NocModel
from repro.hw.sram import Scratchpad


class TestFifo:
    def test_push_pop_order(self):
        fifo = Fifo(depth=4)
        for value in (1, 2, 3):
            fifo.push(value)
        assert [fifo.pop(), fifo.pop(), fifo.pop()] == [1, 2, 3]

    def test_full_push_raises(self):
        fifo = Fifo(depth=2)
        fifo.push(1)
        fifo.push(2)
        with pytest.raises(FifoError):
            fifo.push(3)

    def test_empty_pop_raises(self):
        with pytest.raises(FifoError):
            Fifo(depth=1).pop()

    def test_try_push_reports_stall(self):
        fifo = Fifo(depth=1)
        assert fifo.try_push(1)
        assert not fifo.try_push(2)
        assert fifo.full_stalls == 1

    def test_try_pop_returns_none_when_empty(self):
        fifo = Fifo(depth=1)
        assert fifo.try_pop() is None
        assert fifo.empty_stalls == 1

    def test_peek_does_not_remove(self):
        fifo = Fifo(depth=2)
        fifo.push(42)
        assert fifo.peek() == 42
        assert fifo.occupancy == 1

    def test_occupancy_and_flags(self):
        fifo = Fifo(depth=2)
        assert fifo.is_empty and not fifo.is_full
        fifo.push(1)
        fifo.push(2)
        assert fifo.is_full and not fifo.is_empty

    def test_statistics_track_traffic(self):
        fifo = Fifo(depth=4)
        for i in range(4):
            fifo.push(i)
        for _ in range(4):
            fifo.pop()
        assert fifo.total_pushes == 4
        assert fifo.total_pops == 4

    def test_clear_preserves_statistics(self):
        fifo = Fifo(depth=4)
        fifo.push(1)
        fifo.clear()
        assert fifo.is_empty
        assert fifo.total_pushes == 1

    def test_invalid_depth(self):
        with pytest.raises(FifoError):
            Fifo(depth=0)

    def test_snapshot_returns_copy(self):
        fifo = Fifo(depth=3)
        fifo.push(1)
        fifo.push(2)
        snap = fifo.snapshot()
        snap.append(99)
        assert fifo.occupancy == 2


class TestScratchpad:
    def test_write_then_read(self):
        pad = Scratchpad(words=8)
        pad.write(3, 1.5)
        assert pad.read(3) == 1.5

    def test_unwritten_reads_zero(self):
        pad = Scratchpad(words=4)
        assert pad.read(0) == 0.0
        assert not pad.is_written(0)

    def test_out_of_range_raises(self):
        pad = Scratchpad(words=4)
        with pytest.raises(BufferError_):
            pad.read(4)
        with pytest.raises(BufferError_):
            pad.write(-1, 1.0)

    def test_access_counting_into_event_counters(self):
        counters = EventCounters()
        pad = Scratchpad(words=4, counters=counters)
        pad.write(0, 1.0)
        pad.read(0)
        assert counters.register_file_writes == 1
        assert counters.register_file_reads == 1

    def test_bulk_load_does_not_count(self):
        counters = EventCounters()
        pad = Scratchpad(words=4, counters=counters)
        pad.load([1.0, 2.0, 3.0])
        assert counters.register_file_writes == 0
        assert pad.read(1) == 2.0

    def test_bulk_load_overflow_raises(self):
        with pytest.raises(BufferError_):
            Scratchpad(words=2).load([1.0, 2.0, 3.0])

    def test_dump_roundtrip(self):
        pad = Scratchpad(words=4)
        pad.load([1.0, 2.0, 3.0, 4.0])
        assert pad.dump() == [1.0, 2.0, 3.0, 4.0]
        assert pad.dump(base=1, count=2) == [2.0, 3.0]

    def test_clear_zeroes_contents(self):
        pad = Scratchpad(words=2)
        pad.write(0, 5.0)
        pad.clear()
        assert pad.read(0) == 0.0

    def test_statistics(self):
        pad = Scratchpad(words=2)
        pad.write(0, 1.0)
        pad.read(0)
        stats = pad.statistics()
        assert stats["reads"] == 1 and stats["writes"] == 1

    def test_invalid_capacity(self):
        with pytest.raises(BufferError_):
            Scratchpad(words=0)


class TestDram:
    def test_traffic_accumulation(self):
        dram = DramModel(bandwidth_bytes_per_cycle=16, data_bytes=2)
        dram.read_words(100)
        dram.write_words(50)
        assert dram.bytes_read == 200
        assert dram.bytes_written == 100
        assert dram.total_bytes == 300

    def test_traffic_cycles_roofline(self):
        dram = DramModel(bandwidth_bytes_per_cycle=16, data_bytes=2)
        traffic = DramTraffic(bytes_read=160, bytes_written=0)
        assert dram.traffic_cycles(traffic) == 10

    def test_traffic_cycles_from_recorded(self):
        dram = DramModel(bandwidth_bytes_per_cycle=8, data_bytes=2)
        dram.read_words(40)  # 80 bytes
        assert dram.traffic_cycles() == 10

    def test_counters_integration(self):
        counters = EventCounters()
        dram = DramModel(bandwidth_bytes_per_cycle=16, counters=counters)
        dram.read_words(5)
        dram.write_words(3)
        assert counters.dram_reads == 5
        assert counters.dram_writes == 3

    def test_record_traffic(self):
        dram = DramModel(bandwidth_bytes_per_cycle=16, data_bytes=2)
        dram.record_traffic(DramTraffic(bytes_read=20, bytes_written=10))
        assert dram.bytes_read == 20
        assert dram.bytes_written == 10

    def test_negative_traffic_rejected(self):
        with pytest.raises(HardwareError):
            DramTraffic(bytes_read=-1, bytes_written=0)
        dram = DramModel(bandwidth_bytes_per_cycle=16)
        with pytest.raises(HardwareError):
            dram.read_words(-1)

    def test_traffic_addition(self):
        total = DramTraffic(10, 5) + DramTraffic(1, 2)
        assert total.bytes_read == 11 and total.bytes_written == 7

    def test_invalid_bandwidth(self):
        with pytest.raises(HardwareError):
            DramModel(bandwidth_bytes_per_cycle=0)

    def test_reset(self):
        dram = DramModel(bandwidth_bytes_per_cycle=16)
        dram.read_words(10)
        dram.reset()
        assert dram.total_bytes == 0


class TestNoc:
    def test_multicast_counts_per_destination(self):
        counters = EventCounters()
        noc = NocModel(rows=4, cols=4, counters=counters)
        noc.multicast(words=10, destinations=4)
        assert noc.statistics.multicast_transfers == 40
        assert counters.noc_transfers == 40

    def test_psum_forwarding(self):
        noc = NocModel(rows=4, cols=4)
        noc.forward_psum(words=8, hops=3)
        assert noc.statistics.psum_transfers == 24

    def test_accumulation_latency(self):
        noc = NocModel(rows=4, cols=4)
        assert noc.accumulation_latency(5) == 5
        assert noc.accumulation_latency(0) == 0

    def test_negative_traffic_rejected(self):
        noc = NocModel(rows=2, cols=2)
        with pytest.raises(HardwareError):
            noc.multicast(-1, 2)
        with pytest.raises(HardwareError):
            noc.forward_psum(1, -1)

    def test_invalid_dimensions(self):
        with pytest.raises(HardwareError):
            NocModel(rows=0, cols=4)

    def test_reset(self):
        noc = NocModel(rows=2, cols=2)
        noc.multicast(4, 2)
        noc.reset()
        assert noc.statistics.total_transfers == 0


class TestEventCounters:
    def test_addition(self):
        a = EventCounters(mac_ops=5, dram_reads=2)
        b = EventCounters(mac_ops=3, noc_transfers=7)
        total = a + b
        assert total.mac_ops == 8
        assert total.dram_reads == 2
        assert total.noc_transfers == 7

    def test_in_place_add_returns_self(self):
        a = EventCounters(mac_ops=1)
        result = a.add(EventCounters(mac_ops=2))
        assert result is a
        assert a.mac_ops == 3

    def test_scaled(self):
        counters = EventCounters(mac_ops=10, register_file_reads=4)
        scaled = counters.scaled(2.5)
        assert scaled.mac_ops == 25
        assert scaled.register_file_reads == 10

    def test_dict_roundtrip(self):
        counters = EventCounters(mac_ops=1, gated_ops=2, dram_writes=3)
        assert EventCounters.from_dict(counters.as_dict()) == counters

    def test_derived_totals(self):
        counters = EventCounters(
            register_file_reads=3, register_file_writes=2,
            global_buffer_reads=5, global_buffer_writes=1,
            dram_reads=7, dram_writes=3,
        )
        assert counters.register_file_accesses == 5
        assert counters.global_buffer_accesses == 6
        assert counters.dram_accesses == 10

    def test_total_events(self):
        counters = EventCounters(mac_ops=1, alu_ops=2)
        assert counters.total_events() == 3
