"""Unit tests for Network / GANModel containers."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.nn.layers import ActivationLayer, ConvLayer, DenseLayer, TransposedConvLayer
from repro.nn.network import GANModel, Network
from repro.nn.shapes import FeatureMapShape


def _tiny_generator() -> Network:
    return Network(
        name="gen",
        input_shape=FeatureMapShape.image(8, 4, 4),
        layers=(
            TransposedConvLayer(name="t1", out_channels=4, kernel=4, stride=2, padding=1),
            ActivationLayer(name="a1", function="relu"),
            TransposedConvLayer(name="t2", out_channels=1, kernel=4, stride=2, padding=1),
            ActivationLayer(name="a2", function="tanh"),
        ),
    )


def _tiny_discriminator() -> Network:
    return Network(
        name="disc",
        input_shape=FeatureMapShape.image(1, 16, 16),
        layers=(
            ConvLayer(name="c1", out_channels=4, kernel=4, stride=2, padding=1),
            ConvLayer(name="c2", out_channels=8, kernel=4, stride=2, padding=1),
            DenseLayer(name="fc", out_features=1),
        ),
    )


class TestNetwork:
    def test_shape_chain_resolved(self):
        net = _tiny_generator()
        assert net.output_shape.as_tuple() == (1, 16, 16)
        assert len(net) == 4

    def test_bindings_chain_inputs_to_outputs(self):
        net = _tiny_generator()
        bindings = net.bindings
        for previous, current in zip(bindings, bindings[1:]):
            assert previous.output_shape == current.input_shape

    def test_layer_counts(self):
        assert _tiny_generator().transposed_conv_layer_count() == 2
        assert _tiny_generator().conv_layer_count() == 0
        assert _tiny_discriminator().conv_layer_count() == 2

    def test_total_macs_is_sum_of_bindings(self):
        net = _tiny_generator()
        assert net.total_macs() == sum(b.total_macs for b in net.bindings)

    def test_consequential_less_than_total_for_tconv(self):
        net = _tiny_generator()
        assert net.consequential_macs() < net.total_macs()

    def test_binding_lookup_by_name(self):
        net = _tiny_generator()
        binding = net.binding("t2")
        assert binding.layer.name == "t2"
        assert binding.is_transposed

    def test_binding_lookup_missing_raises(self):
        with pytest.raises(NetworkError):
            _tiny_generator().binding("nope")

    def test_convolutional_bindings_filter(self):
        net = _tiny_generator()
        assert len(net.convolutional_bindings()) == 2
        assert all(b.is_convolutional for b in net.convolutional_bindings())

    def test_transposed_bindings_filter(self):
        assert len(_tiny_discriminator().transposed_bindings()) == 0

    def test_total_weights_positive(self):
        assert _tiny_discriminator().total_weights() > 0

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(NetworkError):
            Network(
                name="bad",
                input_shape=FeatureMapShape.image(1, 8, 8),
                layers=(
                    ConvLayer(name="c", out_channels=2, kernel=3, stride=1, padding=1),
                    ConvLayer(name="c", out_channels=2, kernel=3, stride=1, padding=1),
                ),
            )

    def test_empty_network_rejected(self):
        with pytest.raises(NetworkError):
            Network(name="bad", input_shape=FeatureMapShape.image(1, 8, 8), layers=())

    def test_broken_shape_chain_reports_layer(self):
        with pytest.raises(NetworkError, match="kernel"):
            Network(
                name="bad",
                input_shape=FeatureMapShape.image(1, 2, 2),
                layers=(
                    ConvLayer(name="c1", out_channels=2, kernel=5, stride=1, padding=0),
                ),
            )

    def test_iteration_yields_bindings(self):
        names = [binding.name for binding in _tiny_generator()]
        assert names == ["t1", "a1", "t2", "a2"]


class TestGANModel:
    def test_layer_counts_dict(self):
        model = GANModel(
            name="tiny", generator=_tiny_generator(), discriminator=_tiny_discriminator()
        )
        counts = model.layer_counts()
        assert counts == {
            "generator_conv": 0,
            "generator_tconv": 2,
            "discriminator_conv": 2,
            "discriminator_tconv": 0,
        }

    def test_generator_inconsequential_fraction_bounds(self):
        model = GANModel(
            name="tiny", generator=_tiny_generator(), discriminator=_tiny_discriminator()
        )
        fraction = model.generator_tconv_inconsequential_fraction()
        assert 0.0 < fraction < 1.0

    def test_discriminator_accounting_excludes_tconv_when_flagged(self):
        autoencoder_disc = Network(
            name="disc_ae",
            input_shape=FeatureMapShape.image(1, 16, 16),
            layers=(
                ConvLayer(name="c1", out_channels=4, kernel=4, stride=2, padding=1),
                TransposedConvLayer(name="d1", out_channels=1, kernel=4, stride=2, padding=1),
            ),
        )
        model = GANModel(
            name="ae",
            generator=_tiny_generator(),
            discriminator=autoencoder_disc,
            discriminator_conv_only=True,
        )
        names = [b.name for b in model.discriminator_bindings_for_accounting()]
        assert names == ["c1"]

    def test_empty_name_rejected(self):
        with pytest.raises(NetworkError):
            GANModel(name="", generator=_tiny_generator(), discriminator=_tiny_discriminator())
