"""Unit/integration tests for the whole-network simulators and result types."""

from __future__ import annotations

import pytest

from repro.analysis.results import ComparisonResult
from repro.baseline.simulator import EyerissSimulator
from repro.config import ArchitectureConfig, SimulationOptions
from repro.core.simulator import GanaxSimulator
from repro.errors import AnalysisError
from repro.hw.energy import EnergyBreakdown


@pytest.fixture(scope="module")
def dcgan_comparison(dcgan_model):
    eyeriss = EyerissSimulator()
    ganax = GanaxSimulator()
    return ComparisonResult(
        model_name=dcgan_model.name,
        eyeriss=eyeriss.simulate_gan(dcgan_model),
        ganax=ganax.simulate_gan(dcgan_model),
    )


# Module-scoped fixtures cannot see the session conftest fixtures directly;
# re-import the workload here.
@pytest.fixture(scope="module")
def dcgan_model():
    from repro.workloads import get_workload

    return get_workload("DCGAN")


class TestLayerResults:
    def test_layer_results_cover_all_layers(self, dcgan_model):
        result = EyerissSimulator().simulate_network(dcgan_model.generator)
        assert len(result.layer_results) == len(dcgan_model.generator)

    def test_layer_result_fields(self, dcgan_model):
        result = GanaxSimulator().simulate_network(dcgan_model.generator)
        tconv = [r for r in result.layer_results if r.is_transposed][0]
        assert tconv.accelerator == "ganax"
        assert tconv.cycles > 0
        assert tconv.energy.total_pj > 0
        assert 0.0 <= tconv.pe_utilization <= 1.0
        assert tconv.macs_consequential <= tconv.macs_total

    def test_network_totals_are_sums(self, dcgan_model):
        result = EyerissSimulator().simulate_network(dcgan_model.generator)
        assert result.cycles == sum(r.cycles for r in result.layer_results)
        assert result.energy_pj == pytest.approx(
            sum(r.energy_pj for r in result.layer_results)
        )
        assert result.macs_total == dcgan_model.generator.total_macs()

    def test_layer_lookup(self, dcgan_model):
        result = EyerissSimulator().simulate_network(dcgan_model.generator)
        assert result.layer("tconv1").layer_name == "tconv1"
        with pytest.raises(AnalysisError):
            result.layer("missing")

    def test_batch_size_scales_cycles(self, dcgan_model):
        single = EyerissSimulator().simulate_network(dcgan_model.generator)
        batched = EyerissSimulator(
            options=SimulationOptions(batch_size=4)
        ).simulate_network(dcgan_model.generator)
        assert batched.cycles == 4 * single.cycles


class TestGanResults:
    def test_gan_result_contains_both_networks(self, dcgan_model):
        result = EyerissSimulator().simulate_gan(dcgan_model)
        assert result.generator.cycles > 0
        assert result.discriminator is not None
        assert result.total_cycles == result.generator.cycles + result.discriminator.cycles

    def test_discriminator_can_be_excluded(self, dcgan_model):
        simulator = EyerissSimulator(options=SimulationOptions(include_discriminator=False))
        result = simulator.simulate_gan(dcgan_model)
        assert result.discriminator is None
        assert result.total_cycles == result.generator.cycles

    def test_runtime_and_energy_splits(self, dcgan_model):
        result = GanaxSimulator().simulate_gan(dcgan_model)
        runtime = result.runtime_split()
        energy = result.energy_split()
        assert set(runtime) == {"generative", "discriminative"}
        assert runtime["generative"] > 0
        assert energy["discriminative"] > 0

    def test_magan_discriminator_tconv_excluded(self, magan_model):
        result = EyerissSimulator().simulate_gan(magan_model)
        assert all(not r.is_transposed for r in result.discriminator.layer_results)
        # The six encoder convolutions are still accounted for.
        conv_layers = [r for r in result.discriminator.layer_results if r.is_convolutional]
        assert len(conv_layers) == 6

    def test_total_energy_is_breakdown_sum(self, dcgan_model):
        result = GanaxSimulator().simulate_gan(dcgan_model)
        assert isinstance(result.total_energy, EnergyBreakdown)
        assert result.total_energy_pj == pytest.approx(
            result.generator.energy_pj + result.discriminator.energy_pj
        )


class TestComparisonResult:
    def test_speedup_and_energy_reduction_positive(self, dcgan_comparison):
        assert dcgan_comparison.generator_speedup > 1.0
        assert dcgan_comparison.generator_energy_reduction > 1.0

    def test_ganax_utilization_higher(self, dcgan_comparison):
        assert (
            dcgan_comparison.ganax_generator_utilization
            > dcgan_comparison.eyeriss_generator_utilization
        )

    def test_normalized_runtime_structure(self, dcgan_comparison):
        runtime = dcgan_comparison.normalized_runtime()
        assert set(runtime) == {"eyeriss", "ganax"}
        # EYERISS normalises to itself: segments sum to 1.
        assert sum(runtime["eyeriss"].values()) == pytest.approx(1.0)
        # GANAX total must be smaller (faster).
        assert sum(runtime["ganax"].values()) < 1.0

    def test_normalized_energy_structure(self, dcgan_comparison):
        energy = dcgan_comparison.normalized_energy()
        assert sum(energy["eyeriss"].values()) == pytest.approx(1.0)
        assert sum(energy["ganax"].values()) < 1.0

    def test_discriminative_share_unchanged(self, dcgan_comparison):
        """GANAX delivers the same efficiency as EYERISS on discriminators."""
        runtime = dcgan_comparison.normalized_runtime()
        assert runtime["ganax"]["discriminative"] == pytest.approx(
            runtime["eyeriss"]["discriminative"], rel=1e-6
        )

    def test_unit_energy_breakdown_components(self, dcgan_comparison):
        unit = dcgan_comparison.normalized_unit_energy()
        assert set(unit["eyeriss"]) == {"pe", "rf", "noc", "gbuf", "dram"}
        assert sum(unit["eyeriss"].values()) == pytest.approx(1.0)
        # Every component shrinks or stays equal on GANAX (Figure 10).
        for key in unit["eyeriss"]:
            assert unit["ganax"][key] <= unit["eyeriss"][key] * 1.001

    def test_mismatched_accelerators_rejected(self, dcgan_model):
        eyeriss = EyerissSimulator().simulate_gan(dcgan_model)
        with pytest.raises(AnalysisError):
            ComparisonResult(model_name="bad", eyeriss=eyeriss, ganax=eyeriss)


class TestConfigSensitivity:
    def test_smaller_array_is_slower(self, dcgan_model):
        big = GanaxSimulator().simulate_gan(dcgan_model)
        small = GanaxSimulator(
            config=ArchitectureConfig.paper_default().with_updates(num_pvs=4, pes_per_pv=4)
        ).simulate_gan(dcgan_model)
        assert small.generator.cycles > big.generator.cycles

    def test_lower_bandwidth_never_faster(self, dcgan_model):
        fast = EyerissSimulator().simulate_gan(dcgan_model)
        slow = EyerissSimulator(
            config=ArchitectureConfig.paper_default().with_updates(
                dram_bandwidth_bytes_per_cycle=4.0
            )
        ).simulate_gan(dcgan_model)
        assert slow.generator.cycles >= fast.generator.cycles
