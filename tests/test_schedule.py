"""The schedule subsystem: specs, registry, lowering effects, cache identity.

Covers the searchable-schedule layer end to end:

* :class:`~repro.schedule.ScheduleSpec` knob validation and the planning-time
  semantics (column permutation, task emission, repeat splitting);
* the registry and the ``<family>@<args>`` spec-string grammar;
* fingerprints — aliases with equal knobs share one, any knob change moves it;
* the lowering knobs against the *machine*: ``hoisted`` emits strictly fewer
  µops, stays verifier-clean and computes bit-equal addresses; ``unroll``
  stays numerically exact because the accumulator persists across dispatches;
* the verify-then-simulate gate (:func:`~repro.schedule.verify_schedule`);
* the cache-identity regression (jobs differing only in schedule never share
  a cache or layer-memo entry) and the DSE schedule axis.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analysis.serialization import layer_fingerprint
from repro.config import ArchitectureConfig, SimulationOptions
from repro.core.compiler import GanaxLayerExecutor, compile_layer_programs
from repro.dse import DesignSpaceExplorer
from repro.dse.space import SCHEDULE_DIMENSION, DesignPoint, DesignSpace, Dimension
from repro.errors import ConfigurationError, ScheduleError, UnknownScheduleError
from repro.nn.functional import transposed_conv2d
from repro.runner import (
    DiskResultCache,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
)
from repro.schedule import (
    DEFAULT_SCHEDULE,
    ScheduleSpec,
    canonical_schedule_name,
    describe_schedule,
    describe_schedules,
    register_schedule,
    resolve_schedule,
    schedule_families,
    schedule_fingerprint,
    schedule_is_feasible,
    schedule_names,
    unregister_schedule,
    verify_schedule,
)
from repro.staticcheck import MachineModel, Severity, verify_program
from repro.workloads.registry import get_workload


def _dcgan_binding(layer_name: str):
    model = get_workload("dcgan")
    for net in (model.generator, model.discriminator):
        for binding in net.bindings:
            if binding.name == layer_name:
                return binding
    raise AssertionError(f"no dcgan layer named {layer_name}")


def _compile(binding, schedule, **kw):
    kw.setdefault("num_pvs", 16)
    kw.setdefault("pes_per_pv", 16)
    kw.setdefault("max_waves", 1)
    return compile_layer_programs(binding, schedule=schedule, **kw)


def _total_uops(programs):
    return sum(len(p.global_uops) for p in programs)


# ----------------------------------------------------------------------
# ScheduleSpec semantics
# ----------------------------------------------------------------------
class TestScheduleSpec:
    @pytest.mark.parametrize(
        "knobs",
        [
            {"row_order": "zigzag"},
            {"pv_policy": "random"},
            {"column_order": "shuffled"},
            {"column_tile": -1},
            {"column_tile": 5000},
            {"column_tile": True},
            {"repeat_unroll": 0},
            {"repeat_unroll": 9},
            {"hoist_invariant_cfg": 1},
        ],
    )
    def test_invalid_knobs_rejected(self, knobs):
        with pytest.raises(ScheduleError):
            ScheduleSpec(name="bad", **knobs)

    def test_empty_name_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduleSpec(name="  ")

    def test_default_spec_is_default_lowering(self):
        assert DEFAULT_SCHEDULE.is_default_lowering
        assert not resolve_schedule("hoisted").is_default_lowering

    def test_permute_columns_descending(self):
        spec = ScheduleSpec(name="t", column_order="descending")
        assert spec.permute_columns((0, 1, 2, 3)) == (3, 2, 1, 0)

    def test_permute_columns_tile_interleaves(self):
        spec = ScheduleSpec(name="t", column_tile=2)
        # column-major over 2-wide tiles: phase 0 of every tile, then phase 1
        assert spec.permute_columns((0, 1, 2, 3, 4, 5)) == (0, 2, 4, 1, 3, 5)

    def test_permute_columns_tile_wider_than_row_is_identity(self):
        spec = ScheduleSpec(name="t", column_tile=64)
        assert spec.permute_columns((0, 1, 2)) == (0, 1, 2)

    def test_permute_columns_default_is_identity(self):
        assert DEFAULT_SCHEDULE.permute_columns((3, 1, 2)) == (3, 1, 2)

    def test_task_emission_roundrobin(self):
        assert DEFAULT_SCHEDULE.task_emission(5, 2) == (
            (0, 0), (1, 1), (2, 0), (3, 1), (4, 0)
        )

    def test_task_emission_blocked_fills_waves_with_distinct_pvs(self):
        spec = ScheduleSpec(name="t", pv_policy="blocked")
        emission = spec.task_emission(6, 2)
        # every planned index appears exactly once
        assert sorted(i for i, _ in emission) == list(range(6))
        # PV p owns the contiguous block [p*3, p*3+3)
        for index, pv in emission:
            assert pv == index // 3
        # consecutive emissions alternate PVs, so wave chunking never stalls
        pvs = [pv for _, pv in emission]
        assert pvs == [0, 1, 0, 1, 0, 1]

    def test_task_emission_empty(self):
        assert DEFAULT_SCHEDULE.task_emission(0, 4) == ()

    @pytest.mark.parametrize("taps,parts", [(7, 2), (7, 3), (3, 8), (1, 4)])
    def test_split_repeat_balanced_and_exact(self, taps, parts):
        spec = ScheduleSpec(name="t", repeat_unroll=parts)
        split = spec.split_repeat(taps)
        assert len(split) == parts
        assert sum(split) == taps
        assert split[0] >= 1
        assert max(split) - min(split) <= 1
        assert list(split) == sorted(split, reverse=True)

    def test_analytic_hooks(self):
        assert DEFAULT_SCHEDULE.dispatch_event_multiplier() == 1
        assert ScheduleSpec(name="t", repeat_unroll=3).dispatch_event_multiplier() == 3
        assert DEFAULT_SCHEDULE.uop_fetches_per_event(16) == 17
        hoisted = resolve_schedule("hoisted")
        assert hoisted.uop_fetches_per_event(16) == 9


# ----------------------------------------------------------------------
# Registry and spec-string grammar
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtins_registered(self):
        names = schedule_names()
        for name in ("default", "hoisted", "raster", "blocked"):
            assert name in names
        assert set(schedule_families()) >= {"colmajor", "unroll"}

    def test_resolve_none_is_default(self):
        assert resolve_schedule(None) is DEFAULT_SCHEDULE

    def test_resolve_spec_passthrough(self):
        spec = ScheduleSpec(name="inline", column_tile=3)
        assert resolve_schedule(spec) is spec

    def test_resolve_is_case_and_space_insensitive(self):
        assert resolve_schedule(" Hoisted ") is resolve_schedule("hoisted")

    def test_family_points_and_default_point(self):
        assert resolve_schedule("colmajor@tile64").column_tile == 64
        assert resolve_schedule("colmajor@tile2").column_tile == 2
        assert resolve_schedule("colmajor").column_tile == 64
        assert resolve_schedule("unroll@u3").repeat_unroll == 3
        assert resolve_schedule("unroll").repeat_unroll == 2

    def test_canonical_schedule_name(self):
        assert canonical_schedule_name(None) == "default"
        assert canonical_schedule_name("colmajor") == "colmajor@tile64"
        assert canonical_schedule_name("unroll@u4") == "unroll@u4"

    def test_unknown_schedule_lists_registry(self):
        with pytest.raises(UnknownScheduleError) as excinfo:
            resolve_schedule("no-such-schedule")
        message = str(excinfo.value)
        assert "default" in message and "hoisted" in message
        assert "colmajor" in message
        assert excinfo.value.registered == schedule_names()

    def test_unknown_schedule_error_pickles(self):
        """Cross-process safety: the error must survive a worker round-trip."""
        err = UnknownScheduleError("typo", schedule_names(), schedule_families())
        clone = pickle.loads(pickle.dumps(err))
        assert clone.name == "typo"
        assert clone.registered == err.registered
        assert str(clone) == str(err)

    def test_bad_family_args_rejected(self):
        with pytest.raises(ScheduleError):
            resolve_schedule("colmajor@banana")
        with pytest.raises(ScheduleError):
            resolve_schedule("unroll@tile4")  # wrong key for the family
        with pytest.raises(ScheduleError):
            resolve_schedule("unroll@u0")  # parsed, but out of range

    def test_register_duplicate_rejected(self):
        with pytest.raises(ScheduleError):
            register_schedule(ScheduleSpec(name="default"))

    def test_register_unregister_roundtrip(self):
        spec = register_schedule(ScheduleSpec(name="TestOnly", column_tile=4))
        try:
            assert spec.name == "testonly"  # normalized
            assert resolve_schedule("testonly") is spec
        finally:
            unregister_schedule("testonly")
        with pytest.raises(UnknownScheduleError):
            resolve_schedule("testonly")

    def test_describe_schedules_is_json_shaped(self):
        catalog = describe_schedules()
        assert {entry["name"] for entry in catalog["schedules"]} == set(
            schedule_names()
        )
        for entry in catalog["schedules"]:
            assert set(entry) == {"name", "description", "fingerprint", "knobs"}
        assert {f["family"] for f in catalog["families"]} == set(schedule_families())


class TestFingerprint:
    def test_aliases_share_a_fingerprint(self):
        """Name and description are identity-free: equal knobs, equal hash."""
        a = ScheduleSpec(name="a", description="one", column_tile=8)
        b = ScheduleSpec(name="b", description="two", column_tile=8)
        assert schedule_fingerprint(a) == schedule_fingerprint(b)

    def test_every_knob_moves_the_fingerprint(self):
        base = schedule_fingerprint(DEFAULT_SCHEDULE)
        variants = [
            ScheduleSpec(name="v", row_order="raster"),
            ScheduleSpec(name="v", pv_policy="blocked"),
            ScheduleSpec(name="v", column_order="descending"),
            ScheduleSpec(name="v", column_tile=2),
            ScheduleSpec(name="v", repeat_unroll=2),
            ScheduleSpec(name="v", hoist_invariant_cfg=True),
        ]
        prints = [schedule_fingerprint(v) for v in variants]
        assert base not in prints
        assert len(set(prints)) == len(prints)

    def test_describe_schedule_carries_fingerprint(self):
        info = describe_schedule("hoisted")
        assert info["fingerprint"] == schedule_fingerprint(
            resolve_schedule("hoisted")
        )


# ----------------------------------------------------------------------
# Lowering effects against the machine
# ----------------------------------------------------------------------
class TestLoweringEffects:
    def _verify_clean(self, binding, schedule):
        for program in _compile(binding, schedule, max_columns=4):
            model = MachineModel.for_executor(
                ArchitectureConfig.paper_default().with_updates(
                    num_pvs=16, pes_per_pv=16
                ),
                num_pvs=16,
                pes_per_pv=16,
                output_columns=binding.output_shape.spatial[-1],
            )
            findings = [
                f
                for f in verify_program(program, model)
                if f.severity is Severity.ERROR
            ]
            assert findings == []

    def test_hoisted_emits_strictly_fewer_uops(self):
        binding = _dcgan_binding("tconv1")
        default = _compile(binding, "default")
        hoisted = _compile(binding, "hoisted")
        assert _total_uops(hoisted) < _total_uops(default)

    def test_hoisted_is_verifier_clean(self):
        self._verify_clean(_dcgan_binding("tconv1"), "hoisted")
        self._verify_clean(_dcgan_binding("conv1"), "hoisted")

    def test_unroll_emits_more_dispatches(self):
        binding = _dcgan_binding("tconv1")
        default = _compile(binding, "default", max_columns=4)
        unrolled = _compile(binding, "unroll@u2", max_columns=4)
        assert _total_uops(unrolled) > _total_uops(default)

    @pytest.mark.parametrize("schedule", ["hoisted", "unroll@u2", "unroll@u3",
                                          "colmajor@tile2", "raster", "blocked",
                                          "descending"])
    def test_machine_output_matches_reference(self, schedule):
        """Every non-default lowering computes the exact same layer.

        ``descending`` is not registered — passed as an inline spec — to also
        cover the spec-instance path through the executor.
        """
        if schedule == "descending":
            schedule = ScheduleSpec(name="descending", column_order="descending")
        rng = np.random.default_rng(7)
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((5, 5))
        reference = transposed_conv2d(x[None], w[None, None], stride=2, padding=2)[0]
        executor = GanaxLayerExecutor(
            num_pvs=4, pes_per_pv=4, skip_zeros=True, schedule=schedule
        )
        result = executor.run_transposed_conv(x, w, stride=2, padding=2)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_hoisted_machine_output_bit_equal_to_default(self):
        """Eliding redundant cfg writes must not change a single bit."""
        rng = np.random.default_rng(11)
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((5, 5))
        runs = {}
        for name in ("default", "hoisted"):
            executor = GanaxLayerExecutor(
                num_pvs=4, pes_per_pv=4, skip_zeros=True, schedule=name
            )
            runs[name] = executor.run_transposed_conv(x, w, stride=2, padding=2)
        assert np.array_equal(runs["hoisted"].output, runs["default"].output)
        assert runs["hoisted"].executed_pe_uops == runs["default"].executed_pe_uops


# ----------------------------------------------------------------------
# The verify-then-simulate gate
# ----------------------------------------------------------------------
class TestVerifyGate:
    @pytest.mark.parametrize("schedule", [None, "default", "hoisted", "raster",
                                          "blocked", "colmajor@tile2",
                                          "colmajor@tile64", "unroll@u2"])
    def test_registered_schedules_feasible_on_paper_geometry(self, schedule):
        feasibility = verify_schedule(schedule, num_pvs=16, pes_per_pv=16)
        assert feasibility
        assert feasibility.feasible
        assert feasibility.findings == 0
        assert feasibility.programs > 0
        assert feasibility.reason == ""

    def test_unfit_geometry_is_infeasible_with_reason(self):
        # 4 PEs per PV cannot host the probe's 5-tap kernel rows.
        feasibility = verify_schedule("default", num_pvs=4, pes_per_pv=4)
        assert not feasibility
        assert feasibility.reason

    def test_schedule_is_feasible_shorthand(self):
        assert schedule_is_feasible("hoisted", num_pvs=16, pes_per_pv=16)
        assert not schedule_is_feasible("hoisted", num_pvs=4, pes_per_pv=4)

    def test_unknown_schedule_still_raises(self):
        with pytest.raises(UnknownScheduleError):
            verify_schedule("no-such", num_pvs=16, pes_per_pv=16)


# ----------------------------------------------------------------------
# Cache identity (satellite: the collision regression)
# ----------------------------------------------------------------------
class TestCacheIdentity:
    def test_jobs_differing_only_in_schedule_never_share_a_cache_key(self):
        config = ArchitectureConfig.paper_default()
        keys = {
            schedule: SimulationJob(
                model="dcgan",
                accelerator="ganax",
                config=config,
                options=SimulationOptions(schedule=schedule),
            ).cache_key
            for schedule in ("default", "hoisted", "colmajor@tile64", "unroll@u2")
        }
        assert len(set(keys.values())) == len(keys)

    def test_layer_memo_entries_differ_by_schedule(self):
        binding = _dcgan_binding("tconv1")
        config = ArchitectureConfig.paper_default()
        prints = {
            schedule: layer_fingerprint(
                binding,
                "ganax",
                "1",
                config,
                SimulationOptions(schedule=schedule),
            )
            for schedule in ("default", "hoisted", "raster")
        }
        assert len(set(prints.values())) == len(prints)

    def test_reregistered_name_with_new_knobs_moves_the_key(self):
        """The knob fingerprint rides in the cache key alongside the name, so
        re-registering a name with different knobs can never collide with
        *persisted* results computed under the old knobs.

        The in-process memo layers are keyed by the spec string and must be
        cleared after a registry swap (mid-process re-registration is a
        test-only operation); the property under test here is the one that
        protects disk caches across processes.
        """
        from repro.analysis.serialization import _simulation_context_fingerprint

        binding = _dcgan_binding("tconv1")
        config = ArchitectureConfig.paper_default()

        def fingerprint():
            layer_fingerprint.cache_clear()
            _simulation_context_fingerprint.cache_clear()
            return layer_fingerprint(
                binding, "ganax", "1", config, SimulationOptions(schedule="tuned-x")
            )

        register_schedule(ScheduleSpec(name="tuned-x", column_tile=2))
        try:
            before = fingerprint()
        finally:
            unregister_schedule("tuned-x")
        register_schedule(ScheduleSpec(name="tuned-x", column_tile=4))
        try:
            after = fingerprint()
        finally:
            unregister_schedule("tuned-x")
        assert before != after

    def test_options_canonicalize_family_points(self):
        options = SimulationOptions(schedule="colmajor")
        assert options.schedule == "colmajor@tile64"
        with pytest.raises(UnknownScheduleError):
            SimulationOptions(schedule="no-such-schedule")


# ----------------------------------------------------------------------
# The DSE schedule axis
# ----------------------------------------------------------------------
class TestDseScheduleAxis:
    def test_dimension_canonicalizes_and_dedups(self):
        dim = Dimension(SCHEDULE_DIMENSION, ("colmajor", "colmajor@tile64", "hoisted"))
        assert dim.values == ("colmajor@tile64", "hoisted")

    def test_dimension_rejects_unknown_schedule(self):
        with pytest.raises(UnknownScheduleError):
            Dimension(SCHEDULE_DIMENSION, ("default", "no-such"))

    def test_design_point_apply_ignores_schedule(self):
        base = ArchitectureConfig.paper_default()
        point = DesignPoint.from_mapping(
            {"num_pvs": 8, SCHEDULE_DIMENSION: "hoisted"}
        )
        applied = point.apply(base)
        assert applied.num_pvs == 8
        assert point.schedule == "hoisted"
        schedule_only = DesignPoint.from_mapping({SCHEDULE_DIMENSION: "hoisted"})
        assert schedule_only.apply(base) is base

    def test_schedule_insensitive_accelerator_rejects_the_axis(self):
        for accelerator in ("eyeriss", "ideal"):
            with pytest.raises(ConfigurationError):
                DesignSpace.for_accelerator(
                    accelerator, fields=(SCHEDULE_DIMENSION,)
                )

    def test_schedule_axis_defaults_to_the_registry(self):
        space = DesignSpace.for_accelerator(
            "ganax", fields=("num_pvs", SCHEDULE_DIMENSION),
            overrides={"num_pvs": (8, 16)},
        )
        schedule_dim = next(
            d for d in space.dimensions if d.name == SCHEDULE_DIMENSION
        )
        assert set(schedule_dim.values) == set(schedule_names())

    def test_infeasible_schedules_are_pruned_not_simulated(self, monkeypatch):
        space = DesignSpace.for_accelerator(
            "ganax",
            fields=("num_pvs", SCHEDULE_DIMENSION),
            overrides={"num_pvs": (16,), SCHEDULE_DIMENSION: ("default", "hoisted")},
        )
        import repro.schedule as schedule_module

        monkeypatch.setattr(
            schedule_module,
            "schedule_is_feasible",
            lambda schedule, **kw: canonical_schedule_name(schedule) != "hoisted",
        )
        surviving = {point.schedule for point in space.points()}
        assert surviving == {"default"}

    def test_explore_ranks_geometry_x_schedule_with_warm_cache(self, tmp_path):
        """Acceptance: schedule-aware keys — a warm re-search is 100% hits."""
        space_args = dict(
            fields=("num_pvs", SCHEDULE_DIMENSION),
            overrides={
                "num_pvs": (8, 16),
                SCHEDULE_DIMENSION: ("default", "hoisted"),
            },
        )
        models = [get_workload("MAGAN")]

        def search(runner):
            explorer = DesignSpaceExplorer(models=models, runner=runner)
            return explorer.explore(space=explorer.space(**space_args))

        cold = search(
            SimulationRunner(
                backend=SerialBackend(), cache=DiskResultCache(tmp_path / "c")
            )
        )
        assert len(cold.evaluated) == 4
        labels = {p.point.label for p in cold.evaluated}
        assert any("schedule=hoisted" in label for label in labels)
        # the schedule axis must actually move the ganax objective values
        by_schedule = {}
        for p in cold.evaluated:
            by_schedule.setdefault(p.point.values["num_pvs"], {})[
                p.point.schedule
            ] = p.metrics
        for metrics in by_schedule.values():
            assert metrics["default"] != metrics["hoisted"]

        warm = search(
            SimulationRunner(
                backend=SerialBackend(), cache=DiskResultCache(tmp_path / "c")
            )
        )
        assert warm.cache_stats.lookups > 0
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hit_rate == 1.0
        assert warm.frontier.summary() == cold.frontier.summary()
