"""Unit tests for the ASCII bar-chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis.charts import (
    BAR_CHAR,
    MARKER_CHAR,
    fraction_chart,
    horizontal_bar_chart,
    ratio_chart,
    stacked_chart,
)
from repro.errors import AnalysisError


class TestHorizontalBarChart:
    def test_bars_scale_with_values(self):
        chart = horizontal_bar_chart("T", {"A": 1.0, "B": 2.0}, width=20)
        lines = chart.splitlines()
        bar_a = lines[2].split("[")[1].split("]")[0]
        bar_b = lines[3].split("[")[1].split("]")[0]
        assert bar_a.count(BAR_CHAR) == 10
        assert bar_b.count(BAR_CHAR) == 20

    def test_reference_marker_drawn(self):
        chart = horizontal_bar_chart(
            "T", {"A": 4.0}, width=20, reference={"A": 2.0}, max_value=4.0
        )
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert bar[10] == MARKER_CHAR
        assert "(| = paper)" in chart

    def test_values_appear_with_unit(self):
        chart = horizontal_bar_chart("T", {"A": 3.6}, unit="x")
        assert "3.60x" in chart

    def test_labels_aligned(self):
        chart = horizontal_bar_chart("T", {"short": 1.0, "a-much-longer-label": 1.0})
        lines = chart.splitlines()[2:4]
        assert lines[0].index("[") == lines[1].index("[")

    def test_empty_values_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {})

    def test_negative_values_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {"A": -1.0})

    def test_narrow_width_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {"A": 1.0}, width=5)

    def test_zero_values_render(self):
        chart = horizontal_bar_chart("T", {"A": 0.0})
        assert BAR_CHAR not in chart.splitlines()[2].split("[")[1].split("]")[0]


class TestFigureStyleCharts:
    def test_ratio_chart_uses_x_unit(self):
        chart = ratio_chart("Speedup", {"DCGAN": 4.5, "Geomean": 4.1})
        assert "4.50x" in chart and "Geomean" in chart

    def test_fraction_chart_uses_percent_scale(self):
        chart = fraction_chart("Utilization", {"DCGAN": 0.89})
        assert "89.0%" in chart
        assert "100.0%" in chart  # fixed 0..100 scale

    def test_fraction_chart_reference(self):
        chart = fraction_chart("F", {"DCGAN": 0.9}, reference={"DCGAN": 0.5})
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert MARKER_CHAR in bar


class TestStackedChart:
    def test_segments_render_with_distinct_symbols(self):
        chart = stacked_chart(
            "Runtime",
            {"DCGAN/eyeriss": {"disc": 0.1, "gen": 0.9}},
            segments=("disc", "gen"),
        )
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert "#" in bar and "=" in bar
        assert "legend" in chart

    def test_total_shown(self):
        chart = stacked_chart(
            "T", {"row": {"a": 0.25, "b": 0.25}}, segments=("a", "b")
        )
        assert "0.50" in chart

    def test_missing_segment_rejected(self):
        with pytest.raises(AnalysisError):
            stacked_chart("T", {"row": {"a": 0.5}}, segments=("a", "b"))

    def test_empty_mapping_rejected(self):
        with pytest.raises(AnalysisError):
            stacked_chart("T", {}, segments=("a",))

    def test_too_many_segments_rejected(self):
        segments = tuple("abcdefgh")
        with pytest.raises(AnalysisError):
            stacked_chart("T", {"row": {s: 0.1 for s in segments}}, segments=segments)


class TestRegistryAwareCharts:
    """multi_comparison_chart / frontier_chart over arbitrary registry sets."""

    @pytest.fixture(scope="class")
    def comparisons(self):
        from repro.runner import SimulationRunner
        from repro.workloads.registry import get_workload

        runner = SimulationRunner()
        return runner.compare_accelerators(
            [get_workload("DCGAN")],
            ("eyeriss", "ganax", "ideal"),
            baseline="eyeriss",
        )

    def test_one_bar_per_model_accelerator(self, comparisons):
        from repro.analysis.charts import multi_comparison_chart

        chart = multi_comparison_chart("Speedup", comparisons)
        assert "DCGAN/ganax" in chart
        assert "DCGAN/ideal" in chart
        assert "DCGAN/eyeriss" not in chart  # baseline skipped by default
        chart = multi_comparison_chart(
            "Speedup", comparisons, include_baseline=True
        )
        assert "DCGAN/eyeriss" in chart and "1.00x" in chart

    def test_utilization_metric_uses_percent_scale(self, comparisons):
        from repro.analysis.charts import multi_comparison_chart

        chart = multi_comparison_chart(
            "Utilization", comparisons, metric="pe_utilization"
        )
        assert "%" in chart

    def test_unknown_metric_rejected(self, comparisons):
        from repro.analysis.charts import multi_comparison_chart

        with pytest.raises(AnalysisError):
            multi_comparison_chart("T", comparisons, metric="latency")

    def test_empty_comparisons_rejected(self):
        from repro.analysis.charts import multi_comparison_chart

        with pytest.raises(AnalysisError):
            multi_comparison_chart("T", {})

    def test_frontier_chart_marks_frontier_points(self):
        from repro.analysis.charts import frontier_chart
        from repro.dse import DesignPoint, EvaluatedPoint, Objective, ParetoFrontier

        objectives = (Objective("speedup", "max"), Objective("area", "min"))
        points = [
            EvaluatedPoint(
                point=DesignPoint.from_mapping({"num_pvs": pvs}),
                objectives={"speedup": speedup, "area": area},
            )
            for pvs, speedup, area in [(8, 2.0, 1.0), (16, 1.0, 1.0)]
        ]
        frontier = ParetoFrontier(objectives, points)
        chart = frontier_chart("DSE", frontier)
        assert "[speedup]" in chart
        assert "num_pvs=8 *" in chart  # the winner is marked
        assert "num_pvs=16" in chart and "num_pvs=16 *" not in chart
        assert "Pareto frontier" in chart
        by_area = frontier_chart("DSE", frontier, objective="area")
        assert "[area]" in by_area
        with pytest.raises(AnalysisError):
            frontier_chart("DSE", frontier, objective="latency")
