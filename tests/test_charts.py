"""Unit tests for the ASCII bar-chart rendering."""

from __future__ import annotations

import pytest

from repro.analysis.charts import (
    BAR_CHAR,
    MARKER_CHAR,
    fraction_chart,
    horizontal_bar_chart,
    ratio_chart,
    stacked_chart,
)
from repro.errors import AnalysisError


class TestHorizontalBarChart:
    def test_bars_scale_with_values(self):
        chart = horizontal_bar_chart("T", {"A": 1.0, "B": 2.0}, width=20)
        lines = chart.splitlines()
        bar_a = lines[2].split("[")[1].split("]")[0]
        bar_b = lines[3].split("[")[1].split("]")[0]
        assert bar_a.count(BAR_CHAR) == 10
        assert bar_b.count(BAR_CHAR) == 20

    def test_reference_marker_drawn(self):
        chart = horizontal_bar_chart(
            "T", {"A": 4.0}, width=20, reference={"A": 2.0}, max_value=4.0
        )
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert bar[10] == MARKER_CHAR
        assert "(| = paper)" in chart

    def test_values_appear_with_unit(self):
        chart = horizontal_bar_chart("T", {"A": 3.6}, unit="x")
        assert "3.60x" in chart

    def test_labels_aligned(self):
        chart = horizontal_bar_chart("T", {"short": 1.0, "a-much-longer-label": 1.0})
        lines = chart.splitlines()[2:4]
        assert lines[0].index("[") == lines[1].index("[")

    def test_empty_values_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {})

    def test_negative_values_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {"A": -1.0})

    def test_narrow_width_rejected(self):
        with pytest.raises(AnalysisError):
            horizontal_bar_chart("T", {"A": 1.0}, width=5)

    def test_zero_values_render(self):
        chart = horizontal_bar_chart("T", {"A": 0.0})
        assert BAR_CHAR not in chart.splitlines()[2].split("[")[1].split("]")[0]


class TestFigureStyleCharts:
    def test_ratio_chart_uses_x_unit(self):
        chart = ratio_chart("Speedup", {"DCGAN": 4.5, "Geomean": 4.1})
        assert "4.50x" in chart and "Geomean" in chart

    def test_fraction_chart_uses_percent_scale(self):
        chart = fraction_chart("Utilization", {"DCGAN": 0.89})
        assert "89.0%" in chart
        assert "100.0%" in chart  # fixed 0..100 scale

    def test_fraction_chart_reference(self):
        chart = fraction_chart("F", {"DCGAN": 0.9}, reference={"DCGAN": 0.5})
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert MARKER_CHAR in bar


class TestStackedChart:
    def test_segments_render_with_distinct_symbols(self):
        chart = stacked_chart(
            "Runtime",
            {"DCGAN/eyeriss": {"disc": 0.1, "gen": 0.9}},
            segments=("disc", "gen"),
        )
        bar = chart.splitlines()[2].split("[")[1].split("]")[0]
        assert "#" in bar and "=" in bar
        assert "legend" in chart

    def test_total_shown(self):
        chart = stacked_chart(
            "T", {"row": {"a": 0.25, "b": 0.25}}, segments=("a", "b")
        )
        assert "0.50" in chart

    def test_missing_segment_rejected(self):
        with pytest.raises(AnalysisError):
            stacked_chart("T", {"row": {"a": 0.5}}, segments=("a", "b"))

    def test_empty_mapping_rejected(self):
        with pytest.raises(AnalysisError):
            stacked_chart("T", {}, segments=("a",))

    def test_too_many_segments_rejected(self):
        segments = tuple("abcdefgh")
        with pytest.raises(AnalysisError):
            stacked_chart("T", {"row": {s: 0.1 for s in segments}}, segments=segments)
