"""Tests for CSV/JSON export of simulation and comparison results."""

from __future__ import annotations

import json

import pytest

from repro.analysis.serialization import (
    comparison_rows,
    export_comparisons,
    flatten_mapping,
    gan_result_rows,
    network_result_rows,
    read_csv,
    write_csv,
    write_json,
)
from repro.analysis.sweep import compare_model
from repro.errors import AnalysisError
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def comparison():
    return compare_model(get_workload("DCGAN"))


class TestFlatten:
    def test_nested_mapping_flattens_with_dots(self):
        flat = flatten_mapping({"a": {"b": 1, "c": {"d": 2}}, "e": 3})
        assert flat == {"a.b": 1, "a.c.d": 2, "e": 3}

    def test_lists_are_json_encoded(self):
        flat = flatten_mapping({"a": [1, 2, 3]})
        assert json.loads(flat["a"]) == [1, 2, 3]


class TestRowBuilders:
    def test_network_rows_one_per_layer(self, comparison):
        rows = network_result_rows(comparison.ganax.generator)
        assert len(rows) == len(comparison.ganax.generator.layer_results)
        assert all(row["accelerator"] == "ganax" for row in rows)
        assert all("energy_dram_pj" in row for row in rows)

    def test_gan_rows_include_both_networks(self, comparison):
        rows = gan_result_rows(comparison.eyeriss)
        networks = {row["network"] for row in rows}
        assert len(networks) == 2
        assert all(row["model"] == "DCGAN" for row in rows)

    def test_comparison_rows_contents(self, comparison):
        rows = comparison_rows({"DCGAN": comparison})
        assert len(rows) == 1
        row = rows[0]
        assert row["speedup"] > 1.0
        assert row["ganax_generator_cycles"] < row["eyeriss_generator_cycles"]

    def test_comparison_rows_empty_rejected(self):
        with pytest.raises(AnalysisError):
            comparison_rows({})


class TestWriters:
    def test_csv_roundtrip(self, tmp_path, comparison):
        rows = comparison_rows({"DCGAN": comparison})
        path = write_csv(rows, tmp_path / "summary.csv")
        loaded = read_csv(path)
        assert len(loaded) == 1
        assert loaded[0]["model"] == "DCGAN"
        assert float(loaded[0]["speedup"]) == pytest.approx(rows[0]["speedup"])

    def test_csv_unions_fieldnames(self, tmp_path):
        path = write_csv([{"a": 1}, {"b": 2}], tmp_path / "mixed.csv")
        loaded = read_csv(path)
        assert set(loaded[0]) == {"a", "b"}
        assert loaded[1]["a"] == ""

    def test_empty_csv_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            write_csv([], tmp_path / "empty.csv")

    def test_read_missing_csv_rejected(self, tmp_path):
        with pytest.raises(AnalysisError):
            read_csv(tmp_path / "missing.csv")

    def test_json_writer(self, tmp_path):
        path = write_json({"x": {"y": 1.5}}, tmp_path / "data.json")
        assert json.loads(path.read_text()) == {"x": {"y": 1.5}}

    def test_export_comparisons_writes_two_files(self, tmp_path, comparison):
        written = export_comparisons({"DCGAN": comparison}, tmp_path)
        assert written["summary"].exists()
        assert written["layers"].exists()
        layer_rows = read_csv(written["layers"])
        accelerators = {row["accelerator"] for row in layer_rows}
        assert accelerators == {"eyeriss", "ganax"}
