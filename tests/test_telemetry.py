"""Tests for the unified telemetry layer: tracing, metrics, profiling hooks.

The load-bearing guarantees:

* **span-tree invariants** — on every backend (serial, process-pool,
  asyncio) a traced batch produces exactly one ``batch`` span, one ``job``
  span per submitted job parented under it, every span closed exactly once,
  and no span left open after the batch completes;
* **metrics-snapshot consistency** — the registry's snapshot is an atomic
  cut: concurrent completions never tear a counter below zero or above its
  true total, and sibling instruments fed by the same completion path agree
  once the work quiesces;
* **export formats** — the JSONL export is one parseable span per line, and
  the Chrome trace-event export is a valid ``traceEvents`` object with
  complete (``"ph": "X"``) microsecond events;
* **result parity** — simulation results are byte-identical with telemetry
  fully on and fully off (the tentpole's "observability never perturbs the
  physics" contract).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.serialization import canonical_json, gan_result_rows
from repro.runner import SimulationJob, SimulationRunner, get_backend
from repro.runner.events import RECORD_SCHEMA_VERSION, RunnerEvent
from repro.telemetry import (
    MetricsRegistry,
    MetricsSubscriber,
    Tracer,
    configure_metrics,
    configure_tracing,
    get_metrics,
    get_tracer,
    timed,
)


@pytest.fixture(autouse=True)
def fresh_telemetry():
    """Every test starts with a clean registry and no tracer installed."""
    configure_metrics()
    configure_tracing(enabled=False)
    yield
    configure_metrics()
    configure_tracing(enabled=False)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(5)
        registry.gauge("g").dec(2)
        registry.histogram("h").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["c"] == 3
        assert snapshot["gauges"]["g"] == 3
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["histograms"]["h"]["sum"] == 0.25

    def test_labels_address_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits", client="a").inc()
        registry.counter("hits", client="b").inc(4)
        # label keys are sorted, so argument order never forks an instrument
        registry.counter("multi", b=2, a=1).inc()
        registry.counter("multi", a=1, b=2).inc()
        counters = registry.snapshot()["counters"]
        assert counters["hits{client=a}"] == 1
        assert counters["hits{client=b}"] == 4
        assert counters["multi{a=1,b=2}"] == 2

    def test_same_name_different_kind_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_counter_value_does_not_create(self):
        registry = MetricsRegistry()
        assert registry.counter_value("absent") == 0
        assert "absent" not in registry.snapshot()["counters"]

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["min"] == 1.0
        assert summary["max"] == 100.0
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0

    def test_reset_drops_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_snapshot_consistency_under_concurrent_completions(self):
        """Snapshots taken mid-flight never tear; siblings agree at the end.

        Each worker mimics the completion path: one counter increment plus
        one histogram observation per "job".  A concurrent reader asserts
        every snapshot is self-consistent (counter never exceeds the true
        total, sibling instruments never drift further apart than the number
        of in-between windows, i.e. one per worker).
        """
        registry = MetricsRegistry()
        workers, per_worker = 4, 500
        total = workers * per_worker
        stop = threading.Event()
        torn = []

        def complete_jobs():
            counter = registry.counter("jobs.done")
            histogram = registry.histogram("jobs.latency")
            for i in range(per_worker):
                counter.inc()
                histogram.observe(0.001 * i)

        def watch():
            while not stop.is_set():
                snapshot = registry.snapshot()
                done = snapshot["counters"].get("jobs.done", 0)
                observed = snapshot["histograms"].get("jobs.latency", {}).get(
                    "count", 0
                )
                if not 0 <= done <= total or abs(done - observed) > workers:
                    torn.append((done, observed))

        threads = [threading.Thread(target=complete_jobs) for _ in range(workers)]
        watcher = threading.Thread(target=watch)
        watcher.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        watcher.join()
        assert not torn
        final = registry.snapshot()
        assert final["counters"]["jobs.done"] == total
        assert final["histograms"]["jobs.latency"]["count"] == total

    def test_configure_metrics_disabled_returns_none(self):
        assert configure_metrics(enabled=False) is None
        assert get_metrics() is None
        registry = configure_metrics()
        assert registry is get_metrics()
        assert registry.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# Tracer unit behavior
# ----------------------------------------------------------------------
class TestTracer:
    def test_begin_end_and_exactly_once_close(self):
        tracer = Tracer()
        span = tracer.begin("work", jobs=3)
        assert tracer.open_spans() == [span]
        assert tracer.end(span, outcome="completed") is True
        assert tracer.end(span) is False  # repeated end is a no-op
        (finished,) = tracer.finished_spans()
        assert finished.closed and finished.duration >= 0
        assert finished.attrs == {"jobs": 3, "outcome": "completed"}

    def test_context_manager_nests_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                leaf = tracer.begin("leaf")
                tracer.end(leaf)
        spans = {span.name: span for span in tracer.finished_spans()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == outer.span_id
        assert spans["leaf"].parent_id == inner.span_id
        assert not tracer.open_spans()

    def test_explicit_parent_wins_over_stack(self):
        tracer = Tracer()
        root = tracer.begin("root")
        with tracer.span("ambient"):
            child = tracer.begin("child", parent_id=root.span_id)
        assert child.parent_id == root.span_id
        tracer.end(child)
        tracer.end(root)

    def test_job_registration_bridges_threads(self):
        tracer = Tracer()
        job_span = tracer.begin("job")
        tracer.register_job("cache-key-1", job_span.span_id)
        found = {}

        def worker():
            found["parent"] = tracer.parent_for("cache-key-1")

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert found["parent"] == job_span.span_id
        tracer.unregister_job("cache-key-1")
        assert tracer.parent_for("cache-key-1") is None
        tracer.end(job_span)

    def test_chrome_trace_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("batch", jobs=1):
            with tracer.span("job"):
                pass
        path = tmp_path / "trace.json"
        tracer.export(path)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert [event["name"] for event in events] == ["job", "batch"]
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["args"]["span_id"].startswith("s")
        job, batch = events
        assert job["args"]["parent_id"] == batch["args"]["span_id"]

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        path = tmp_path / "trace.jsonl"
        tracer.export(path)  # extension selects the JSONL grammar
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [record["name"] for record in records] == ["inner", "outer"]
        assert records[0]["parent_id"] == records[1]["span_id"]
        assert all(record["end"] >= record["start"] for record in records)

    def test_configure_tracing_toggles_the_global(self):
        assert get_tracer() is None  # off by default
        tracer = configure_tracing()
        assert get_tracer() is tracer
        assert configure_tracing(enabled=False) is None
        assert get_tracer() is None


# ----------------------------------------------------------------------
# Profiling hooks
# ----------------------------------------------------------------------
class TestProfilingHooks:
    def test_timed_feeds_a_histogram(self):
        with timed("unit.test.block", phase="setup"):
            pass
        registry = get_metrics()
        summary = registry.histogram("unit.test.block", phase="setup").summary()
        assert summary["count"] == 1
        assert summary["min"] >= 0

    def test_timed_is_a_noop_when_metrics_disabled(self):
        configure_metrics(enabled=False)
        with timed("unit.test.block"):
            pass  # must not raise, must not create anything
        assert get_metrics() is None


# ----------------------------------------------------------------------
# Event grammar: timestamps and correlation ids
# ----------------------------------------------------------------------
class TestEventGrammar:
    def test_schema_version_is_two(self):
        assert RECORD_SCHEMA_VERSION == 2

    def test_describe_carries_timestamp_and_job_uid(self, dcgan_model):
        job = SimulationJob.comparison_pair(dcgan_model)[0]
        event = RunnerEvent(kind="scheduled", job=job, index=0, job_uid="job-1-7")
        record = event.describe()
        assert record["schema_version"] == RECORD_SCHEMA_VERSION
        assert isinstance(record["timestamp"], float)
        assert record["job_uid"] == "job-1-7"

    def test_job_uid_is_optional_for_compatibility(self, dcgan_model):
        job = SimulationJob.comparison_pair(dcgan_model)[0]
        record = RunnerEvent(kind="scheduled", job=job, index=0).describe()
        assert "job_uid" not in record  # pre-v2 producers simply omit it

    def test_runner_events_share_one_uid_per_job(self, dcgan_model):
        runner = SimulationRunner(backend=get_backend("serial"))
        try:
            events = []
            jobs = SimulationJob.comparison_pair(dcgan_model)
            handle = runner.submit(jobs, on_event=events.append)
            list(handle.as_completed())
        finally:
            runner.close()
        by_uid = {}
        for event in events:
            assert event.job_uid is not None
            by_uid.setdefault(event.job_uid, []).append(event.kind)
        assert len(by_uid) == len(jobs)
        for kinds in by_uid.values():
            assert kinds[0] == "scheduled"
        # timestamps are monotonic within each job's lifecycle
        for uid in by_uid:
            stamps = [e.timestamp for e in events if e.job_uid == uid]
            assert stamps == sorted(stamps)


# ----------------------------------------------------------------------
# MetricsSubscriber (duck-typed bridge)
# ----------------------------------------------------------------------
class _FakeEvent:
    def __init__(self, kind, job_uid, timestamp, is_terminal):
        self.kind = kind
        self.job_uid = job_uid
        self.timestamp = timestamp
        self.is_terminal = is_terminal


class TestMetricsSubscriber:
    def test_counts_and_latency_from_event_timestamps(self):
        subscriber = MetricsSubscriber()
        subscriber(_FakeEvent("scheduled", "u1", 10.0, False))
        subscriber(_FakeEvent("started", "u1", 10.5, False))
        subscriber(_FakeEvent("completed", "u1", 12.0, True))
        subscriber(_FakeEvent("scheduled", "u2", 11.0, False))
        subscriber(_FakeEvent("failed", "u2", 11.25, True))
        registry = get_metrics()
        counters = registry.snapshot()["counters"]
        assert counters["runner.jobs.scheduled"] == 2
        assert counters["runner.jobs.completed"] == 1
        assert counters["runner.jobs.failed"] == 1
        latency = registry.histogram("runner.job.latency_seconds").summary()
        assert latency["count"] == 2
        assert latency["min"] == 0.25
        assert latency["max"] == 2.0

    def test_noop_when_metrics_disabled(self):
        configure_metrics(enabled=False)
        subscriber = MetricsSubscriber()
        subscriber(_FakeEvent("scheduled", "u1", 0.0, False))
        subscriber(_FakeEvent("completed", "u1", 1.0, True))
        assert get_metrics() is None


# ----------------------------------------------------------------------
# Span-tree invariants on every backend
# ----------------------------------------------------------------------
class TestSpanTreeInvariants:
    @pytest.mark.parametrize("backend_name", ["serial", "process-pool", "asyncio"])
    def test_batch_job_tree_is_backend_invariant(self, backend_name, dcgan_model):
        tracer = configure_tracing()
        runner = SimulationRunner(backend=get_backend(backend_name, max_workers=2))
        try:
            jobs = SimulationJob.comparison_pair(dcgan_model)
            handle = runner.submit(jobs)
            completions = list(handle.as_completed())
            assert len(completions) == len(jobs)
        finally:
            runner.close()

        spans = tracer.finished_spans()
        assert not tracer.open_spans()  # every span closed
        span_ids = [span.span_id for span in spans]
        assert len(span_ids) == len(set(span_ids))  # ...exactly once

        batches = [span for span in spans if span.name == "batch"]
        job_spans = [span for span in spans if span.name == "job"]
        assert len(batches) == 1
        assert len(job_spans) == len(jobs)
        batch = batches[0]
        assert batch.parent_id is None
        assert batch.attrs["jobs"] == len(jobs)
        assert batch.attrs["counts"].get("completed") == len(jobs)
        for span in job_spans:
            assert span.parent_id == batch.span_id
            assert span.attrs["outcome"] == "completed"
            assert span.start >= batch.start
            assert span.end <= batch.end

    def test_cache_hits_and_dedup_close_their_job_spans(self, dcgan_model):
        tracer = configure_tracing()
        runner = SimulationRunner(backend=get_backend("serial"))
        try:
            jobs = SimulationJob.comparison_pair(dcgan_model)
            # duplicates in one batch exercise the dedup path; the second
            # batch is answered from cache
            list(runner.submit(list(jobs) + list(jobs)).as_completed())
            list(runner.submit(jobs).as_completed())
        finally:
            runner.close()
        spans = tracer.finished_spans()
        assert not tracer.open_spans()
        outcomes = sorted(
            span.attrs["outcome"] for span in spans if span.name == "job"
        )
        assert outcomes == sorted(
            ["completed"] * 2 + ["completed"] * 2 + ["cache-hit"] * 2
        )
        assert len([span for span in spans if span.name == "batch"]) == 2

    def test_execution_spans_nest_under_their_job(self, dcgan_model):
        """On in-process backends the simulate_layers span joins the tree."""
        tracer = configure_tracing()
        runner = SimulationRunner(backend=get_backend("serial"))
        try:
            jobs = SimulationJob.comparison_pair(dcgan_model)
            list(runner.submit(jobs).as_completed())
        finally:
            runner.close()
        spans = tracer.finished_spans()
        job_ids = {span.span_id for span in spans if span.name == "job"}
        simulate = [span for span in spans if span.name == "simulate_layers"]
        assert simulate  # present on the serial backend
        for span in simulate:
            assert span.parent_id in job_ids
        simulate_ids = {span.span_id for span in simulate}
        for span in spans:
            if span.name == "layer-memo":
                assert span.parent_id in simulate_ids


# ----------------------------------------------------------------------
# Telemetry never perturbs the physics
# ----------------------------------------------------------------------
class TestResultParity:
    def _result_bytes(self, model):
        runner = SimulationRunner(backend=get_backend("serial"))
        try:
            results = runner.run_jobs(SimulationJob.comparison_pair(model))
        finally:
            runner.close()
        rows = [row for result in results for row in gan_result_rows(result)]
        return canonical_json(rows).encode("utf-8")

    def test_results_identical_with_telemetry_on_and_off(self, dcgan_model):
        configure_metrics(enabled=False)
        configure_tracing(enabled=False)
        dark = self._result_bytes(dcgan_model)
        configure_metrics()
        configure_tracing()
        lit = self._result_bytes(dcgan_model)
        assert dark == lit
