"""Unit tests for the strided µindex generator (Figure 7b)."""

from __future__ import annotations

import pytest

from repro.core.index_generator import GeneratorConfig, StridedIndexGenerator
from repro.errors import SimulationError
from repro.isa.uops import ConfigRegister


def _configured(addr=0, offset=0, step=1, end=4, repeat=1) -> StridedIndexGenerator:
    generator = StridedIndexGenerator()
    generator.configure(GeneratorConfig(addr=addr, offset=offset, step=step, end=end, repeat=repeat))
    generator.start()
    return generator


class TestConfiguration:
    def test_write_registers_via_access_cfg_path(self):
        generator = StridedIndexGenerator()
        generator.write_register(ConfigRegister.ADDR, 0)
        generator.write_register(ConfigRegister.OFFSET, 10)
        generator.write_register(ConfigRegister.STEP, 2)
        generator.write_register(ConfigRegister.END, 6)
        generator.write_register(ConfigRegister.REPEAT, 1)
        generator.start()
        assert generator.drain() == [10, 12, 14]

    def test_negative_register_value_rejected(self):
        with pytest.raises(SimulationError):
            StridedIndexGenerator().write_register(ConfigRegister.STEP, -1)

    def test_invalid_configuration_rejected_on_start(self):
        generator = StridedIndexGenerator()
        generator.configure(GeneratorConfig(addr=0, offset=0, step=0, end=4, repeat=1))
        with pytest.raises(SimulationError):
            generator.start()

    def test_addr_must_be_below_end(self):
        generator = StridedIndexGenerator()
        generator.configure(GeneratorConfig(addr=4, offset=0, step=1, end=4, repeat=1))
        with pytest.raises(SimulationError):
            generator.start()


class TestSequences:
    def test_sequential_sweep(self):
        assert _configured(offset=100, end=5).drain() == [100, 101, 102, 103, 104]

    def test_strided_sweep(self):
        assert _configured(step=3, end=10).drain() == [0, 3, 6, 9]

    def test_constant_pattern_via_repeat(self):
        # End=1 with Repeat=n emits the same (offset) address n times: the
        # stationary-operand configuration used for weights.
        assert _configured(offset=7, end=1, repeat=4).drain() == [7, 7, 7, 7]

    def test_repeat_replays_pattern(self):
        assert _configured(end=3, repeat=2).drain() == [0, 1, 2, 0, 1, 2]

    def test_total_addresses_prediction(self):
        config = GeneratorConfig(addr=0, offset=0, step=2, end=7, repeat=3)
        generator = StridedIndexGenerator()
        generator.configure(config)
        generator.start()
        assert len(generator.drain()) == config.total_addresses()

    def test_zero_repeat_generates_nothing(self):
        generator = StridedIndexGenerator()
        generator.configure(GeneratorConfig(addr=0, offset=0, step=1, end=4, repeat=0))
        generator.start()
        assert not generator.running
        assert generator.drain() == []

    def test_stop_interrupts_generation(self):
        generator = _configured(end=100, repeat=1)
        first = generator.tick()
        generator.stop()
        assert first == 0
        assert generator.tick() is None
        assert not generator.running

    def test_restart_after_stop(self):
        generator = _configured(end=3, repeat=1)
        generator.tick()
        generator.stop()
        generator.start()
        assert generator.drain() == [0, 1, 2]

    def test_one_address_per_tick(self):
        generator = _configured(end=3)
        assert generator.tick() == 0
        assert generator.tick() == 1
        assert generator.tick() == 2
        assert generator.tick() is None

    def test_addresses_generated_counter(self):
        generator = _configured(end=4, repeat=2)
        generator.drain()
        assert generator.addresses_generated == 8

    def test_drain_limit_guards_against_runaway(self):
        generator = _configured(end=1000, repeat=1000)
        with pytest.raises(SimulationError):
            generator.drain(limit=10)

    def test_stop_signal_asserted_when_repeat_exhausted(self):
        generator = _configured(end=2, repeat=1)
        generator.tick()
        assert generator.running
        generator.tick()
        assert not generator.running


class TestGeneratorConfig:
    def test_addresses_per_round(self):
        assert GeneratorConfig(step=2, end=7, repeat=1).addresses_per_round() == 4
        assert GeneratorConfig(step=1, end=1, repeat=5).addresses_per_round() == 1

    def test_total_addresses_zero_repeat(self):
        assert GeneratorConfig(step=1, end=4, repeat=0).total_addresses() == 0
