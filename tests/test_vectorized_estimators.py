"""Scalar vs. vectorized estimator parity.

The analytic performance models now run as NumPy array programs over whole
layer tables (``estimate_network`` in :mod:`repro.baseline.performance` and
:mod:`repro.core.performance`, surfaced through ``simulate_layers``).  The
vectorized path must be **bit-identical** to the per-layer scalar path — the
golden regression numbers pin the absolute values; these tests pin the
equivalence itself, over the six paper GANs, the registered accelerator
variants, hypothesis-generated synthetic families, and the big-integer
fallback that guards float64-inexact layer tables.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.accelerators.registry import get_accelerator
from repro.baseline.performance import (
    FLOAT64_EXACT_LIMIT,
    estimate_layer as baseline_estimate_layer,
    estimate_network as baseline_estimate_network,
)
from repro.config import ArchitectureConfig
from repro.core.performance import (
    estimate_layer as ganax_estimate_layer,
    estimate_network as ganax_estimate_network,
)
from repro.nn.layers import TransposedConvLayer
from repro.nn.network import LayerBinding
from repro.nn.shapes import FeatureMapShape
from repro.workloads.registry import get_workload, workload_names
from repro.workloads.synthetic import build_synthetic

ACCELERATORS = ("eyeriss", "ganax", "ganax-noskip", "ideal")


def _networks(model):
    return (model.generator, model.discriminator)


class TestSimulatorParity:
    @pytest.mark.parametrize("accelerator", ACCELERATORS)
    @pytest.mark.parametrize("model_name", sorted(workload_names()))
    def test_simulate_layers_matches_per_layer_loop(
        self, accelerator, model_name, paper_config
    ):
        simulator = get_accelerator(accelerator).create(config=paper_config)
        model = get_workload(model_name)
        for network in _networks(model):
            vectorized = simulator.simulate_layers(network.bindings)
            scalar = tuple(
                simulator.simulate_layer(binding) for binding in network.bindings
            )
            assert vectorized == scalar

    @settings(max_examples=8, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=6),
        base_channels=st.sampled_from([8, 32, 128]),
        kernel=st.integers(min_value=2, max_value=6),
        stride=st.sampled_from([1, 2, 4]),
        upsample_percent=st.sampled_from([0, 50, 100]),
    )
    def test_parity_on_synthetic_families(
        self, depth, base_channels, kernel, stride, upsample_percent
    ):
        try:
            model = build_synthetic(
                depth=depth,
                base_channels=base_channels,
                kernel=kernel,
                stride=stride,
                upsample_percent=upsample_percent,
            )
        except Exception:
            assume(False)  # no exact-upsampling geometry for these knobs
        config = ArchitectureConfig.paper_default()
        for accelerator in ("eyeriss", "ganax"):
            simulator = get_accelerator(accelerator).create(config=config)
            for network in _networks(model):
                vectorized = simulator.simulate_layers(network.bindings)
                scalar = tuple(
                    simulator.simulate_layer(binding)
                    for binding in network.bindings
                )
                assert vectorized == scalar


class TestEstimatorTableParity:
    @pytest.mark.parametrize("model_name", sorted(workload_names()))
    def test_baseline_table_matches_scalar(self, model_name, paper_config):
        model = get_workload(model_name)
        for network in _networks(model):
            table = baseline_estimate_network(network.bindings, paper_config)
            for binding, estimate in zip(network.bindings, table):
                assert estimate == baseline_estimate_layer(binding, paper_config)

    @pytest.mark.parametrize("zero_skipping", (True, False))
    @pytest.mark.parametrize("model_name", sorted(workload_names()))
    def test_ganax_table_matches_scalar(self, model_name, zero_skipping, paper_config):
        model = get_workload(model_name)
        for network in _networks(model):
            table = ganax_estimate_network(
                network.bindings, paper_config, zero_skipping=zero_skipping
            )
            for binding, estimate in zip(network.bindings, table):
                assert estimate == ganax_estimate_layer(
                    binding, paper_config, zero_skipping=zero_skipping
                )

    def test_tables_preserve_binding_order(self, paper_config, dcgan_model):
        bindings = dcgan_model.generator.bindings
        reversed_bindings = tuple(reversed(bindings))
        forward = baseline_estimate_network(bindings, paper_config)
        backward = baseline_estimate_network(reversed_bindings, paper_config)
        assert forward == tuple(reversed(backward))


class TestFloat64Fallback:
    """Layer tables beyond 2**53 fall back to exact big-integer scalars."""

    def _huge_binding(self) -> LayerBinding:
        layer = TransposedConvLayer(
            name="huge_tconv",
            out_channels=2**21,
            kernel=7,
            stride=2,
            padding=3,
            output_padding=1,
        )
        input_shape = FeatureMapShape.image(2**21, 32, 32)
        return LayerBinding(
            index=0,
            layer=layer,
            input_shape=input_shape,
            output_shape=layer.output_shape(input_shape),
        )

    def test_work_exceeds_float64_exact_range(self):
        assert self._huge_binding().total_macs > FLOAT64_EXACT_LIMIT

    def test_baseline_fallback_is_exact(self, paper_config):
        binding = self._huge_binding()
        (table_estimate,) = baseline_estimate_network([binding], paper_config)
        assert table_estimate == baseline_estimate_layer(binding, paper_config)

    @pytest.mark.parametrize("zero_skipping", (True, False))
    def test_ganax_fallback_is_exact(self, zero_skipping, paper_config):
        binding = self._huge_binding()
        (table_estimate,) = ganax_estimate_network(
            [binding], paper_config, zero_skipping=zero_skipping
        )
        assert table_estimate == ganax_estimate_layer(
            binding, paper_config, zero_skipping=zero_skipping
        )
