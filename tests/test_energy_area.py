"""Unit tests for the Table II energy model and the Table III area model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hw.area import AcceleratorAreaBreakdown, AreaModel, PeAreaBreakdown
from repro.hw.counters import EventCounters
from repro.hw.energy import ENERGY_COMPONENTS, EnergyBreakdown, EnergyModel, EnergyTable


class TestEnergyTable:
    def test_paper_values(self):
        table = EnergyTable.paper_table2()
        assert table.register_file_pj_per_bit == pytest.approx(0.20)
        assert table.pe_pj_per_bit == pytest.approx(0.36)
        assert table.inter_pe_pj_per_bit == pytest.approx(0.40)
        assert table.global_buffer_pj_per_bit == pytest.approx(1.20)
        assert table.dram_pj_per_bit == pytest.approx(15.00)

    def test_relative_costs_match_table2(self):
        relative = EnergyTable.paper_table2().relative_costs()
        assert relative["Register File Access"] == pytest.approx(1.0)
        assert relative["16-bit Fixed Point PE"] == pytest.approx(1.8)
        assert relative["Inter-PE Communication"] == pytest.approx(2.0)
        assert relative["Global Buffer Access"] == pytest.approx(6.0)
        assert relative["DDR4 Memory Access"] == pytest.approx(75.0)

    def test_rejects_negative_cost(self):
        with pytest.raises(ConfigurationError):
            EnergyTable(dram_pj_per_bit=-1.0)


class TestEnergyBreakdown:
    def test_total(self):
        breakdown = EnergyBreakdown(pe_pj=1, rf_pj=2, noc_pj=3, gbuf_pj=4, dram_pj=5)
        assert breakdown.total_pj == 15
        assert breakdown.total_uj == pytest.approx(15e-6)

    def test_addition(self):
        a = EnergyBreakdown(pe_pj=1, dram_pj=2)
        b = EnergyBreakdown(rf_pj=3)
        total = a + b
        assert total.pe_pj == 1 and total.rf_pj == 3 and total.dram_pj == 2

    def test_scaling(self):
        scaled = EnergyBreakdown(pe_pj=2, gbuf_pj=4).scaled(0.5)
        assert scaled.pe_pj == 1 and scaled.gbuf_pj == 2

    def test_scaling_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyBreakdown(pe_pj=1).scaled(-1)

    def test_fractions_sum_to_one(self):
        breakdown = EnergyBreakdown(pe_pj=1, rf_pj=1, noc_pj=1, gbuf_pj=1, dram_pj=1)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert set(fractions) == set(ENERGY_COMPONENTS)

    def test_fractions_of_zero_total(self):
        assert all(v == 0.0 for v in EnergyBreakdown().fractions().values())

    def test_sum_classmethod(self):
        total = EnergyBreakdown.sum(
            [EnergyBreakdown(pe_pj=1), EnergyBreakdown(pe_pj=2), EnergyBreakdown(dram_pj=3)]
        )
        assert total.pe_pj == 3 and total.dram_pj == 3

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyBreakdown(pe_pj=-1.0)


class TestEnergyModel:
    def test_mac_energy(self):
        model = EnergyModel(data_bits=16)
        counters = EventCounters(mac_ops=10)
        breakdown = model.energy_of(counters)
        assert breakdown.pe_pj == pytest.approx(10 * 0.36 * 16)
        assert breakdown.total_pj == breakdown.pe_pj

    def test_dram_energy_dominates_per_access(self):
        model = EnergyModel(data_bits=16)
        one_dram = model.energy_of(EventCounters(dram_reads=1)).total_pj
        one_rf = model.energy_of(EventCounters(register_file_reads=1)).total_pj
        assert one_dram == pytest.approx(75 * one_rf)

    def test_gated_op_fraction(self):
        model = EnergyModel(data_bits=16, gated_op_fraction=0.1)
        gated = model.energy_of(EventCounters(gated_ops=10)).pe_pj
        full = model.energy_of(EventCounters(mac_ops=10)).pe_pj
        assert gated == pytest.approx(0.1 * full)

    def test_energy_is_additive_in_counters(self):
        model = EnergyModel()
        a = EventCounters(mac_ops=5, dram_reads=3)
        b = EventCounters(noc_transfers=7, global_buffer_reads=2)
        combined = model.energy_of(a + b).total_pj
        separate = model.energy_of(a).total_pj + model.energy_of(b).total_pj
        assert combined == pytest.approx(separate)

    def test_component_assignment(self):
        model = EnergyModel()
        breakdown = model.energy_of(
            EventCounters(
                mac_ops=1, register_file_reads=1, noc_transfers=1,
                global_buffer_reads=1, dram_reads=1,
            )
        )
        assert breakdown.pe_pj > 0
        assert breakdown.rf_pj > 0
        assert breakdown.noc_pj > 0
        assert breakdown.gbuf_pj > 0
        assert breakdown.dram_pj > 0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(data_bits=0)
        with pytest.raises(ConfigurationError):
            EnergyModel(gated_op_fraction=1.5)


class TestAreaModel:
    def test_pe_area_matches_table3(self):
        pe = PeAreaBreakdown()
        assert pe.total == pytest.approx(29471.6, rel=1e-3)

    def test_pe_fraction_weight_sram_dominates(self):
        fractions = PeAreaBreakdown().fractions()
        assert fractions["weight_sram"] == pytest.approx(0.488, abs=0.01)
        assert max(fractions, key=fractions.get) == "weight_sram"

    def test_total_area_matches_table3(self):
        model = AreaModel(num_pes=256)
        assert model.total_area_um2(ganax=True) == pytest.approx(9066211.8, rel=1e-3)

    def test_pe_array_share(self):
        model = AreaModel(num_pes=256)
        share = model.pe_array_area_um2(True) / model.total_area_um2(True)
        assert share == pytest.approx(0.832, abs=0.01)

    def test_overhead_close_to_paper(self):
        overhead = AreaModel(num_pes=256).ganax_overhead_fraction()
        assert 0.06 <= overhead <= 0.10  # paper reports ~7.8%

    def test_baseline_smaller_than_ganax(self):
        model = AreaModel(num_pes=256)
        assert model.total_area_um2(ganax=False) < model.total_area_um2(ganax=True)

    def test_table3_rows_structure(self):
        rows = AreaModel(num_pes=256).table3_rows()
        names = [name for name, _, _ in rows]
        assert "Strided uIndex Generator" in names
        assert "GANAX Total Area" in names
        total_row = [r for r in rows if r[0] == "GANAX Total Area"][0]
        assert total_row[2] == pytest.approx(1.0)

    def test_negative_component_rejected(self):
        with pytest.raises(ConfigurationError):
            PeAreaBreakdown(weight_sram=-1.0)
        with pytest.raises(ConfigurationError):
            AcceleratorAreaBreakdown(global_data_buffer=-5.0)

    def test_invalid_pe_count(self):
        with pytest.raises(ConfigurationError):
            AreaModel(num_pes=0)

    def test_mm2_conversion(self):
        model = AreaModel(num_pes=256)
        assert model.total_area_mm2(True) == pytest.approx(
            model.total_area_um2(True) * 1e-6
        )
