"""Unit tests for the access µ-engine, execute µ-engine, PE and PV."""

from __future__ import annotations

import pytest

from repro.config import ArchitectureConfig
from repro.core.access_engine import AccessEngine
from repro.core.execute_engine import ExecuteEngine
from repro.core.index_generator import GeneratorConfig
from repro.core.pe import ProcessingEngine
from repro.core.pv import ProcessingVector
from repro.core.uop_buffers import GlobalUopBuffer, LocalUopBuffer
from repro.errors import ProgramError, SimulationError
from repro.hw.counters import EventCounters
from repro.hw.sram import Scratchpad
from repro.isa.uops import AddressGenerator, ConfigRegister, ExecuteOp, ExecuteUop, RepeatUop


def _make_access(depth=4) -> AccessEngine:
    return AccessEngine(fifo_depth=depth, counters=EventCounters())


class TestAccessEngine:
    def test_addresses_flow_into_fifo(self):
        access = _make_access()
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=3, repeat=1))
        access.start(AddressGenerator.INPUT)
        produced = sum(access.tick() for _ in range(5))
        assert produced == 3
        assert [access.pop_address(AddressGenerator.INPUT) for _ in range(3)] == [0, 1, 2]

    def test_full_fifo_applies_backpressure(self):
        access = _make_access(depth=2)
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=10, repeat=1))
        access.start(AddressGenerator.INPUT)
        for _ in range(5):
            access.tick()
        # Only two addresses could be buffered; the generator is stalled, not done.
        assert access.pending_addresses(AddressGenerator.INPUT) == 2
        assert access.generator(AddressGenerator.INPUT).running

    def test_backpressure_resumes_after_pop(self):
        access = _make_access(depth=1)
        access.configure(AddressGenerator.WEIGHT, GeneratorConfig(end=3, repeat=1))
        access.start(AddressGenerator.WEIGHT)
        access.tick()
        assert access.pop_address(AddressGenerator.WEIGHT) == 0
        access.tick()
        assert access.pop_address(AddressGenerator.WEIGHT) == 1

    def test_three_independent_streams(self):
        access = _make_access()
        for stream, base in zip(AddressGenerator, (0, 10, 20)):
            access.configure(stream, GeneratorConfig(offset=base, end=2, repeat=1))
            access.start(stream)
        access.tick()
        assert access.pop_address(AddressGenerator.INPUT) == 0
        assert access.pop_address(AddressGenerator.WEIGHT) == 10
        assert access.pop_address(AddressGenerator.OUTPUT) == 20

    def test_busy_reflects_pending_work(self):
        access = _make_access()
        assert not access.busy
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=1, repeat=1))
        access.start(AddressGenerator.INPUT)
        assert access.busy
        access.tick()
        access.pop_address(AddressGenerator.INPUT)
        assert not access.busy

    def test_index_generation_counter(self):
        counters = EventCounters()
        access = AccessEngine(fifo_depth=4, counters=counters)
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=3, repeat=1))
        access.start(AddressGenerator.INPUT)
        for _ in range(3):
            access.tick()
        assert counters.index_generations == 3

    def test_invalid_depth_rejected(self):
        with pytest.raises(SimulationError):
            AccessEngine(fifo_depth=0)


def _make_execute():
    counters = EventCounters()
    access = AccessEngine(fifo_depth=8, counters=counters)
    input_buffer = Scratchpad(words=16, counters=counters)
    weight_buffer = Scratchpad(words=16, counters=counters)
    output_buffer = Scratchpad(words=16, counters=counters)
    engine = ExecuteEngine(
        access=access,
        input_buffer=input_buffer,
        weight_buffer=weight_buffer,
        output_buffer=output_buffer,
        counters=counters,
    )
    return engine, access, input_buffer, weight_buffer, output_buffer


class TestExecuteEngine:
    def test_mac_accumulates(self):
        engine, access, inp, wgt, _ = _make_execute()
        inp.load([1.0, 2.0, 3.0])
        wgt.load([10.0, 20.0, 30.0])
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=3, repeat=1))
        access.configure(AddressGenerator.WEIGHT, GeneratorConfig(end=3, repeat=1))
        access.start(AddressGenerator.INPUT)
        access.start(AddressGenerator.WEIGHT)
        for _ in range(3):
            engine.enqueue(ExecuteUop(op=ExecuteOp.MAC))
        for _ in range(6):
            access.tick()
            engine.tick()
        assert engine.accumulator == pytest.approx(1 * 10 + 2 * 20 + 3 * 30)

    def test_act_writes_and_resets_accumulator(self):
        engine, access, inp, wgt, out = _make_execute()
        inp.load([2.0])
        wgt.load([3.0])
        for stream, end in ((AddressGenerator.INPUT, 1), (AddressGenerator.WEIGHT, 1), (AddressGenerator.OUTPUT, 1)):
            access.configure(stream, GeneratorConfig(offset=0, end=end, repeat=1))
            access.start(stream)
        engine.enqueue(ExecuteUop(op=ExecuteOp.MAC))
        engine.enqueue(ExecuteUop(op=ExecuteOp.ACT, activation="identity"))
        for _ in range(6):
            access.tick()
            engine.tick()
        assert out.read(0) == pytest.approx(6.0)
        assert engine.accumulator == 0.0

    def test_relu_activation_clamps(self):
        engine, access, inp, wgt, out = _make_execute()
        inp.load([1.0])
        wgt.load([-5.0])
        for stream in AddressGenerator:
            access.configure(stream, GeneratorConfig(end=1, repeat=1))
            access.start(stream)
        engine.enqueue(ExecuteUop(op=ExecuteOp.MAC))
        engine.enqueue(ExecuteUop(op=ExecuteOp.ACT, activation="relu"))
        for _ in range(6):
            access.tick()
            engine.tick()
        assert out.read(0) == 0.0

    def test_stalls_without_addresses(self):
        engine, _access, _inp, _wgt, _out = _make_execute()
        engine.enqueue(ExecuteUop(op=ExecuteOp.MAC))
        assert not engine.tick()
        assert engine.stall_cycles >= 1

    def test_stalls_with_empty_uop_fifo(self):
        engine, *_ = _make_execute()
        assert not engine.tick()
        assert engine.executed_uops == 0

    def test_repeat_waits_for_follower(self):
        engine, access, inp, wgt, _ = _make_execute()
        inp.load([1.0, 1.0])
        wgt.load([1.0, 1.0])
        access.configure(AddressGenerator.INPUT, GeneratorConfig(end=2, repeat=1))
        access.configure(AddressGenerator.WEIGHT, GeneratorConfig(end=2, repeat=1))
        access.start(AddressGenerator.INPUT)
        access.start(AddressGenerator.WEIGHT)
        engine.set_repeat_register(2)
        engine.enqueue(RepeatUop())
        # Follower not yet enqueued: the engine must stall, not crash.
        access.tick()
        assert not engine.tick()
        engine.enqueue(ExecuteUop(op=ExecuteOp.MAC))
        for _ in range(4):
            access.tick()
            engine.tick()
        assert engine.accumulator == pytest.approx(2.0)

    def test_repeat_register_validation(self):
        engine, *_ = _make_execute()
        with pytest.raises(SimulationError):
            engine.set_repeat_register(0)

    def test_nop_executes_without_operands(self):
        engine, *_ = _make_execute()
        engine.enqueue(ExecuteUop(op=ExecuteOp.NOP))
        assert engine.tick()

    def test_rejects_non_execute_uop(self):
        engine, *_ = _make_execute()
        from repro.isa.uops import AccessStart

        with pytest.raises(SimulationError):
            engine.enqueue(AccessStart(pv_index=0, generator=AddressGenerator.INPUT))


class TestProcessingEngine:
    def test_pe_runs_decoupled_pipeline(self, small_config):
        counters = EventCounters()
        pe = ProcessingEngine(0, 0, config=small_config, counters=counters,
                              input_words=16, weight_words=16, output_words=16)
        pe.load_input_row([1.0, 2.0, 3.0])
        pe.load_weight_row([4.0, 5.0, 6.0])
        pe.apply_access_cfg(AddressGenerator.INPUT, ConfigRegister.END, 3)
        pe.apply_access_cfg(AddressGenerator.INPUT, ConfigRegister.REPEAT, 1)
        pe.apply_access_cfg(AddressGenerator.WEIGHT, ConfigRegister.END, 3)
        pe.apply_access_cfg(AddressGenerator.WEIGHT, ConfigRegister.REPEAT, 1)
        pe.apply_access_cfg(AddressGenerator.OUTPUT, ConfigRegister.END, 1)
        pe.apply_access_cfg(AddressGenerator.OUTPUT, ConfigRegister.REPEAT, 1)
        for generator in AddressGenerator:
            pe.start_generator(generator)
        pe.set_repeat_register(3)
        pe.enqueue_uop(RepeatUop())
        pe.enqueue_uop(ExecuteUop(op=ExecuteOp.MAC))
        pe.enqueue_uop(ExecuteUop(op=ExecuteOp.ACT, activation="identity"))
        for _ in range(12):
            pe.tick()
        assert pe.read_output_row(1)[0] == pytest.approx(1 * 4 + 2 * 5 + 3 * 6)
        assert not pe.busy

    def test_buffer_fills_charge_gbuf_and_noc(self, small_config):
        counters = EventCounters()
        pe = ProcessingEngine(0, 0, config=small_config, counters=counters)
        pe.load_input_row([1.0] * 8)
        assert counters.global_buffer_reads == 8
        assert counters.noc_transfers == 8

    def test_generator_running_flag(self, small_config):
        pe = ProcessingEngine(0, 1, config=small_config)
        assert not pe.generator_running(AddressGenerator.INPUT)
        pe.apply_access_cfg(AddressGenerator.INPUT, ConfigRegister.END, 4)
        pe.apply_access_cfg(AddressGenerator.INPUT, ConfigRegister.REPEAT, 1)
        pe.start_generator(AddressGenerator.INPUT)
        assert pe.generator_running(AddressGenerator.INPUT)


class TestProcessingVector:
    def test_broadcast_is_all_or_nothing(self, small_config):
        pv = ProcessingVector(0, num_pes=2, config=small_config)
        uop = ExecuteUop(op=ExecuteOp.NOP)
        # Fill one PE's FIFO to force a rejected broadcast.
        target = pv.pe(0)
        while not target.execute.uop_fifo.is_full:
            target.enqueue_uop(uop)
        assert not pv.broadcast_uop(uop)
        # The other PE must not have received anything.
        assert pv.pe(1).execute.uop_fifo.is_empty

    def test_dispatch_local_fetches_from_buffer(self, small_config):
        pv = ProcessingVector(0, num_pes=2, config=small_config)
        pv.preload_local_uops([ExecuteUop(op=ExecuteOp.NOP), ExecuteUop(op=ExecuteOp.MAC)])
        assert pv.dispatch_local(0)
        assert pv.pe(0).execute.uop_fifo.occupancy == 1
        assert pv.local_buffer.fetches == 1

    def test_accumulate_rows_sums_partial_outputs(self, small_config):
        pv = ProcessingVector(0, num_pes=3, config=small_config,
                              pe_buffer_words={"input": 8, "weight": 8, "output": 8})
        for index, pe in enumerate(pv.pes):
            pe.output_buffer.load([float(index + 1)] * 4)
        total = pv.accumulate_rows(width=4, active_pes=2)
        assert total == [3.0, 3.0, 3.0, 3.0]
        assert pv.accumulation_cycles == 4 + 2

    def test_accumulate_validation(self, small_config):
        pv = ProcessingVector(0, num_pes=2, config=small_config)
        with pytest.raises(SimulationError):
            pv.accumulate_rows(width=0)
        with pytest.raises(SimulationError):
            pv.accumulate_rows(width=4, active_pes=5)

    def test_set_repeat_register_broadcasts(self, small_config):
        pv = ProcessingVector(0, num_pes=2, config=small_config)
        pv.set_repeat_register(7)
        assert all(pe.execute.repeat_register == 7 for pe in pv.pes)


class TestUopBuffers:
    def test_local_buffer_capacity(self):
        buffer = LocalUopBuffer(entries=2, pv_index=0)
        with pytest.raises(ProgramError):
            buffer.preload([ExecuteUop(op=ExecuteOp.MAC)] * 3)

    def test_local_buffer_fetch_counts(self):
        counters = EventCounters()
        buffer = LocalUopBuffer(entries=4, pv_index=0, counters=counters)
        buffer.preload([ExecuteUop(op=ExecuteOp.MAC)])
        buffer.fetch(0)
        assert counters.uop_fetches == 1
        with pytest.raises(SimulationError):
            buffer.fetch(1)

    def test_local_buffer_rejects_global_uops(self):
        from repro.isa.uops import MimdLoad

        buffer = LocalUopBuffer(entries=4, pv_index=0)
        with pytest.raises(ProgramError):
            buffer.preload([MimdLoad(pv_index=0, destination="repeat", immediate=1)])

    def test_global_buffer_streams_in_order(self):
        buffer = GlobalUopBuffer(entries=4)
        uops = [ExecuteUop(op=ExecuteOp.MAC), RepeatUop(count=2)]
        buffer.load_program(uops)
        assert buffer.peek() == uops[0]
        assert buffer.advance() == uops[0]
        assert buffer.advance() == uops[1]
        assert buffer.exhausted
        assert buffer.peek() is None

    def test_global_buffer_refill_count(self):
        buffer = GlobalUopBuffer(entries=4)
        buffer.load_program([ExecuteUop(op=ExecuteOp.NOP)] * 10)
        assert buffer.refills == 2

    def test_global_buffer_advance_past_end_raises(self):
        buffer = GlobalUopBuffer(entries=2)
        buffer.load_program([])
        with pytest.raises(SimulationError):
            buffer.advance()
