"""Tests for the simulation runner: backends, caching, scheduling, parity.

The central guarantee of :mod:`repro.runner` is that the execution strategy is
invisible in the results: serial, process-pool and cache-served runs of the
same jobs produce identical values.  The parity tests assert this at three
levels — dataclass equality, the exact floats the paper figures consume, and
byte-identical canonical JSON of the flattened per-layer rows.
"""

from __future__ import annotations

import pytest

from repro.accelerators import (
    GanSimulatorBase,
    accelerator_names,
    create_accelerator,
    get_accelerator,
    register_accelerator,
    unregister_accelerator,
)
from repro.analysis.serialization import canonical_json, gan_result_rows
from repro.analysis.sweep import ParameterSweep, compare_model, compare_models
from repro.config import ArchitectureConfig, SimulationOptions
from repro.errors import AnalysisError, ConfigurationError, UnknownAcceleratorError
from repro.session import Session
from repro.runner import (
    CacheStats,
    DiskResultCache,
    InMemoryResultCache,
    ProcessPoolBackend,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    execute_job,
    get_default_runner,
    set_default_runner,
)
from repro.workloads.registry import all_workloads, get_workload


@pytest.fixture(scope="module")
def models():
    return all_workloads()


@pytest.fixture(scope="module")
def pool_backend():
    """One process pool shared by every parallel test in this module."""
    backend = ProcessPoolBackend(max_workers=2)
    yield backend
    backend.close()


def result_bytes(comparison) -> bytes:
    """Canonical byte serialization of a comparison's full layer-level data."""
    rows = gan_result_rows(comparison.eyeriss) + gan_result_rows(comparison.ganax)
    return canonical_json(rows).encode("utf-8")


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
class TestSimulationJob:
    def test_rejects_unknown_accelerator(self, dcgan_model, paper_config, options):
        with pytest.raises(AnalysisError):
            SimulationJob(
                model=dcgan_model,
                accelerator="tpu",
                config=paper_config,
                options=options,
            )

    def test_cache_key_is_deterministic(self, dcgan_model, paper_config, options):
        job_a = SimulationJob(dcgan_model, "ganax", paper_config, options)
        job_b = SimulationJob(dcgan_model, "ganax", paper_config, options)
        assert job_a.cache_key == job_b.cache_key

    def test_cache_key_distinguishes_every_input(self, dcgan_model, magan_model):
        config = ArchitectureConfig.paper_default()
        options = SimulationOptions()
        base = SimulationJob(dcgan_model, "ganax", config, options)
        assert (
            SimulationJob(dcgan_model, "eyeriss", config, options).cache_key
            != base.cache_key
        )
        assert (
            SimulationJob(magan_model, "ganax", config, options).cache_key
            != base.cache_key
        )
        assert (
            SimulationJob(
                dcgan_model, "ganax", config.with_updates(num_pvs=8), options
            ).cache_key
            != base.cache_key
        )
        assert (
            SimulationJob(
                dcgan_model, "ganax", config, options.with_updates(batch_size=2)
            ).cache_key
            != base.cache_key
        )

    def test_comparison_pair_covers_both_accelerators(self, dcgan_model):
        eyeriss, ganax = SimulationJob.comparison_pair(dcgan_model)
        assert (eyeriss.accelerator, ganax.accelerator) == ("eyeriss", "ganax")
        assert eyeriss.config == ganax.config

    def test_execute_job_matches_direct_simulation(self, dcgan_model):
        eyeriss_job, ganax_job = SimulationJob.comparison_pair(dcgan_model)
        comparison = compare_model(dcgan_model, runner=SimulationRunner())
        assert execute_job(eyeriss_job) == comparison.eyeriss
        assert execute_job(ganax_job) == comparison.ganax


# ----------------------------------------------------------------------
# Serial vs parallel parity
# ----------------------------------------------------------------------
class TestBackendParity:
    def test_compare_models_serial_parallel_identical(self, models, pool_backend):
        serial = SimulationRunner(backend=SerialBackend()).compare_models(models)
        parallel = SimulationRunner(backend=pool_backend).compare_models(models)
        assert serial.keys() == parallel.keys()
        for name in serial:
            assert serial[name] == parallel[name]
            assert serial[name].generator_speedup == parallel[name].generator_speedup
            assert (
                serial[name].generator_energy_reduction
                == parallel[name].generator_energy_reduction
            )
            assert result_bytes(serial[name]) == result_bytes(parallel[name])

    def test_parameter_sweep_serial_parallel_identical(self, models, pool_backend):
        values = (16.0, 64.0)

        def sweep_with(backend):
            sweep = ParameterSweep(
                models[:3], runner=SimulationRunner(backend=backend)
            )
            return sweep.run("dram_bandwidth_bytes_per_cycle", values)

        serial_points = sweep_with(SerialBackend())
        parallel_points = sweep_with(pool_backend)
        assert len(serial_points) == len(parallel_points) == len(values)
        for s, p in zip(serial_points, parallel_points):
            assert s.label == p.label
            assert s.config == p.config
            assert s.speedups == p.speedups
            assert s.energy_reductions == p.energy_reductions
            assert s.geomean_speedup == p.geomean_speedup
            assert s.geomean_energy_reduction == p.geomean_energy_reduction

    def test_cached_results_identical_to_fresh_ones(self, models):
        runner = SimulationRunner()
        cold = runner.compare_models(models[:2])
        warm = runner.compare_models(models[:2])
        for name in cold:
            assert cold[name] == warm[name]
            assert result_bytes(cold[name]) == result_bytes(warm[name])


# ----------------------------------------------------------------------
# Cache accounting
# ----------------------------------------------------------------------
class TestCacheAccounting:
    def test_cold_batch_counts_all_misses(self, models):
        runner = SimulationRunner()
        runner.compare_models(models)
        assert runner.stats.misses == 2 * len(models)
        assert runner.stats.stores == 2 * len(models)
        assert runner.stats.hits == 0
        assert runner.stats.hit_rate == 0.0
        assert len(runner.cache) == 2 * len(models)

    def test_repeat_batch_is_all_hits(self, models):
        runner = SimulationRunner()
        runner.compare_models(models)
        runner.compare_models(models)
        assert runner.stats.hits == 2 * len(models)
        assert runner.stats.misses == 2 * len(models)
        assert runner.stats.hit_rate == 0.5

    def test_duplicate_jobs_in_one_batch_deduplicate(self, dcgan_model):
        runner = SimulationRunner()
        jobs = list(SimulationJob.comparison_pair(dcgan_model)) * 3
        results = runner.run_jobs(jobs)
        assert len(results) == 6
        assert runner.stats.misses == 2
        assert runner.stats.deduplicated == 4
        # duplicates share the single executed result object
        assert results[0] is results[2] is results[4]
        assert results[1] is results[3] is results[5]

    def test_equivalent_configs_share_cache_entries(self, dcgan_model):
        # ganax_target_utilization defaults to 0.92, so this "update" is a
        # content no-op and must hit the cache, not re-simulate.
        runner = SimulationRunner()
        runner.compare_model(dcgan_model)
        runner.compare_model(
            dcgan_model,
            ArchitectureConfig.paper_default().with_updates(
                ganax_target_utilization=0.92
            ),
        )
        assert runner.stats.misses == 2
        assert runner.stats.hits == 2

    def test_uncached_runner_recomputes(self, dcgan_model):
        runner = SimulationRunner(use_cache=False)
        assert runner.cache is None
        first = runner.compare_model(dcgan_model)
        second = runner.compare_model(dcgan_model)
        assert runner.stats.misses == 4
        assert runner.stats.hits == 0
        assert first == second

    def test_stats_reset(self):
        stats = CacheStats(hits=3, misses=1, stores=1, deduplicated=2)
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75
        stats.reset()
        assert stats.as_dict() == {
            "hits": 0, "misses": 0, "stores": 0, "deduplicated": 0, "hit_rate": 0.0,
        }


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------
class TestCaches:
    def test_in_memory_roundtrip(self, dcgan_model):
        cache = InMemoryResultCache()
        job = SimulationJob.comparison_pair(dcgan_model)[1]
        result = execute_job(job)
        assert cache.get(job.cache_key) is None
        cache.put(job.cache_key, result)
        assert cache.get(job.cache_key) == result
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0

    def test_disk_cache_survives_new_instances(self, tmp_path, dcgan_model):
        job = SimulationJob.comparison_pair(dcgan_model)[1]
        result = execute_job(job)
        DiskResultCache(tmp_path / "cache").put(job.cache_key, result)
        reopened = DiskResultCache(tmp_path / "cache")
        assert len(reopened) == 1
        assert reopened.get(job.cache_key) == result

    def test_disk_cache_warm_runner_hits(self, tmp_path, dcgan_model):
        cold = SimulationRunner(cache=DiskResultCache(tmp_path / "cache"))
        first = cold.compare_model(dcgan_model)
        assert cold.stats.misses == 2
        warm = SimulationRunner(cache=DiskResultCache(tmp_path / "cache"))
        second = warm.compare_model(dcgan_model)
        assert warm.stats.hits == 2
        assert warm.stats.misses == 0
        assert first == second

    def test_disk_cache_treats_corrupt_entry_as_miss(self, tmp_path, dcgan_model):
        cache = DiskResultCache(tmp_path / "cache")
        job = SimulationJob.comparison_pair(dcgan_model)[0]
        cache.put(job.cache_key, execute_job(job))
        entry = cache._path_for(job.cache_key)
        entry.write_bytes(b"torn write from a crashed run")
        fresh = DiskResultCache(tmp_path / "cache")
        assert fresh.get(job.cache_key) is None  # miss, not a crash
        assert not entry.exists()  # corrupt entry dropped for rewrite

    def test_disk_cache_rejects_non_directory_root(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("file, not a directory")
        with pytest.raises(AnalysisError):
            DiskResultCache(not_a_dir)

    def test_disk_cache_clear(self, tmp_path, dcgan_model):
        cache = DiskResultCache(tmp_path / "cache")
        job = SimulationJob.comparison_pair(dcgan_model)[0]
        cache.put(job.cache_key, execute_job(job))
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.get(job.cache_key) is None

    @staticmethod
    def _write_legacy_entry(root, key, result):
        """Plant an entry the way the pre-shard flat layout stored it."""
        import pickle

        root.mkdir(parents=True, exist_ok=True)
        (root / f"{key}.pkl").write_bytes(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        )

    def test_disk_cache_reads_legacy_flat_layout(self, tmp_path, dcgan_model):
        """A cache written before sharding still answers, and migrates."""
        job = SimulationJob.comparison_pair(dcgan_model)[1]
        result = execute_job(job)
        self._write_legacy_entry(tmp_path / "cache", job.cache_key, result)
        cache = DiskResultCache(tmp_path / "cache")
        assert len(cache) == 1  # the flat entry is accounted for
        assert cache.get(job.cache_key) == result
        # the hit migrated the entry into its shard and removed the flat file
        assert cache._path_for(job.cache_key).exists()
        assert not cache._legacy_path_for(job.cache_key).exists()
        assert len(cache) == 1  # migrated, not duplicated
        # a cold instance now serves it straight from the sharded tree
        assert DiskResultCache(tmp_path / "cache").get(job.cache_key) == result

    def test_disk_cache_mixed_layout_accounting(self, tmp_path, dcgan_model):
        """len/size_bytes/prune/clear see sharded and legacy entries alike."""
        sharded_job, legacy_job = SimulationJob.comparison_pair(dcgan_model)
        sharded_result = execute_job(sharded_job)
        legacy_result = execute_job(legacy_job)
        cache = DiskResultCache(tmp_path / "cache")
        cache.put(sharded_job.cache_key, sharded_result)
        self._write_legacy_entry(
            tmp_path / "cache", legacy_job.cache_key, legacy_result
        )
        assert len(cache) == 2
        expected = sum(
            path.stat().st_size
            for path in (
                cache._path_for(sharded_job.cache_key),
                cache._legacy_path_for(legacy_job.cache_key),
            )
        )
        assert cache.size_bytes() == expected
        stats = cache.prune(max_bytes=0)  # evicts both trees
        assert stats.removed_entries == 2
        assert stats.remaining_entries == 0
        assert len(cache) == 0

    def test_disk_cache_corrupt_legacy_entry_is_a_miss(self, tmp_path):
        cache = DiskResultCache(tmp_path / "cache")
        key = "cd" + "0" * 62
        cache._legacy_path_for(key).write_bytes(b"torn legacy write")
        fresh = DiskResultCache(tmp_path / "cache")
        assert fresh.get(key) is None
        assert not fresh._legacy_path_for(key).exists()  # dropped for rewrite


# ----------------------------------------------------------------------
# Runner plumbing
# ----------------------------------------------------------------------
class TestRunnerPlumbing:
    def test_empty_inputs_rejected(self, dcgan_model):
        runner = SimulationRunner()
        with pytest.raises(AnalysisError):
            runner.compare_models([])
        with pytest.raises(AnalysisError):
            runner.compare_models_over_configs([dcgan_model], {})

    def test_run_jobs_empty_batch_is_noop(self):
        runner = SimulationRunner()
        assert runner.run_jobs([]) == []
        assert runner.stats.lookups == 0

    def test_grid_preserves_label_and_model_order(self, models):
        runner = SimulationRunner()
        configs = {
            "narrow": ArchitectureConfig.paper_default().with_updates(num_pvs=8),
            "paper": ArchitectureConfig.paper_default(),
        }
        grid = runner.compare_models_over_configs(models[:3], configs)
        assert list(grid) == ["narrow", "paper"]
        for comparisons in grid.values():
            assert list(comparisons) == [m.name for m in models[:3]]

    def test_context_manager_closes_backend(self, dcgan_model):
        with SimulationRunner(backend=ProcessPoolBackend(max_workers=1)) as runner:
            comparison = runner.compare_model(dcgan_model)
        assert comparison.generator_speedup > 1.0
        assert runner.backend._pool is None  # closed on exit

    def test_default_runner_is_process_wide_and_replaceable(self):
        previous = set_default_runner(None)
        try:
            first = get_default_runner()
            assert get_default_runner() is first
            replacement = SimulationRunner()
            assert set_default_runner(replacement) is first
            assert get_default_runner() is replacement
        finally:
            set_default_runner(previous)

    def test_module_level_helpers_use_explicit_runner(self, dcgan_model):
        runner = SimulationRunner()
        compare_model(dcgan_model, runner=runner)
        comparisons = compare_models([dcgan_model], runner=runner)
        assert runner.stats.lookups == 4
        assert runner.stats.hits == 2  # second call served from the first
        assert set(comparisons) == {"DCGAN"}

    def test_duplicate_sweep_labels_rejected(self, models):
        sweep = ParameterSweep(models[:1], runner=SimulationRunner())
        with pytest.raises(AnalysisError):
            sweep.run("num_pvs", [8, 8], label_format="{parameter}")


# ----------------------------------------------------------------------
# Accelerator registry
# ----------------------------------------------------------------------
class TestAcceleratorRegistry:
    def test_builtin_accelerators_registered(self):
        names = accelerator_names()
        assert len(names) >= 4
        assert {"eyeriss", "ganax", "ganax-noskip", "ideal"} <= set(names)

    def test_specs_carry_version_and_description(self):
        for name in accelerator_names():
            spec = get_accelerator(name)
            assert spec.name == name
            assert spec.version
            assert spec.description
            assert spec.describe()["name"] == name

    def test_created_models_satisfy_the_protocol(self, conv_binding):
        for name in accelerator_names():
            model = create_accelerator(name)
            assert model.name == name
            assert model.describe()["version"] == get_accelerator(name).version
            assert model.config_space()
            result = model.simulate_layer(conv_binding)
            assert result.accelerator == name
            assert result.cycles > 0

    def test_lookup_normalizes_name(self):
        assert get_accelerator(" EYERISS ").name == "eyeriss"

    def test_unknown_name_lists_registered_ones(self):
        with pytest.raises(UnknownAcceleratorError) as excinfo:
            get_accelerator("tpu")
        message = str(excinfo.value)
        assert "tpu" in message
        for name in accelerator_names():
            assert name in message
        assert isinstance(excinfo.value, AnalysisError)  # legacy catch still works

    def test_register_and_unregister_roundtrip(self, dcgan_model):
        @register_accelerator("test-roundtrip", version="7", description="temp")
        class RoundtripSimulator(GanSimulatorBase):
            accelerator_name = "test-roundtrip"

            def simulate_layer(self, binding):
                return create_accelerator("ideal").simulate_layer(binding)

        try:
            assert "test-roundtrip" in accelerator_names()
            spec = get_accelerator("test-roundtrip")
            assert (spec.version, spec.description) == ("7", "temp")
        finally:
            unregister_accelerator("test-roundtrip")
        assert "test-roundtrip" not in accelerator_names()

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_accelerator("ganax")(GanSimulatorBase)

    def test_mismatched_class_name_rejected(self):
        class Mismatched(GanSimulatorBase):
            accelerator_name = "something-else"

        with pytest.raises(ConfigurationError):
            register_accelerator("test-mismatch")(Mismatched)

    def test_factory_function_registration(self, dcgan_model):
        from repro.accelerators.variants import IdealRooflineSimulator

        class NamedRoofline(IdealRooflineSimulator):
            accelerator_name = "test-factory"

        @register_accelerator("test-factory", version="2")
        def build(config=None, options=None):
            return NamedRoofline(config=config, options=options)

        try:
            job = SimulationJob(
                dcgan_model,
                "test-factory",
                ArchitectureConfig.paper_default(),
                SimulationOptions(),
            )
            result = execute_job(job)
            assert result.accelerator == "test-factory"
            ideal = execute_job(
                SimulationJob(dcgan_model, "ideal", job.config, job.options)
            )
            assert result.total_cycles == ideal.total_cycles
        finally:
            unregister_accelerator("test-factory")

    def test_factory_misreporting_its_name_is_rejected(self, dcgan_model):
        # A delegating factory that forwards another entry's results would
        # poison the cache under the wrong identity; execute_job rejects it.
        register_accelerator("test-mislabelled")(
            lambda config=None, options=None: create_accelerator(
                "ideal", config=config, options=options
            )
        )
        try:
            job = SimulationJob(
                dcgan_model,
                "test-mislabelled",
                ArchitectureConfig.paper_default(),
                SimulationOptions(),
            )
            with pytest.raises(AnalysisError, match="registry name"):
                execute_job(job)
        finally:
            unregister_accelerator("test-mislabelled")

    def test_class_version_defaults_to_model_version(self):
        @register_accelerator("test-versioned-class")
        class Versioned(GanSimulatorBase):
            accelerator_name = "test-versioned-class"
            model_version = "3"

            def simulate_layer(self, binding):
                raise NotImplementedError

        try:
            spec = get_accelerator("test-versioned-class")
            assert spec.version == "3"
            assert Versioned().describe()["version"] == "3"
        finally:
            unregister_accelerator("test-versioned-class")

    def test_explicit_version_written_back_to_class(self):
        @register_accelerator("test-explicit-version", version="9")
        class Explicit(GanSimulatorBase):
            accelerator_name = "test-explicit-version"

            def simulate_layer(self, binding):
                raise NotImplementedError

        try:
            assert get_accelerator("test-explicit-version").version == "9"
            assert Explicit().describe()["version"] == "9"
        finally:
            unregister_accelerator("test-explicit-version")

    def test_canonical_options_collapse_ignored_flags(self, dcgan_model):
        config = ArchitectureConfig.paper_default()
        skipping = SimulationOptions(ganax_zero_skipping=True)
        dense = SimulationOptions(ganax_zero_skipping=False)

        def key(accelerator, options):
            return SimulationJob(dcgan_model, accelerator, config, options).cache_key

        # the noskip variant forces the flag off; the baseline and roofline
        # never read it — identical results must share one cache entry
        for name in ("ganax-noskip", "eyeriss", "ideal"):
            assert key(name, skipping) == key(name, dense)
        # ganax genuinely honours the flag, so its keys must stay distinct
        assert key("ganax", skipping) != key("ganax", dense)

    def test_cache_keys_distinct_across_accelerators(self, dcgan_model):
        config = ArchitectureConfig.paper_default()
        options = SimulationOptions()
        keys = {
            SimulationJob(dcgan_model, name, config, options).cache_key
            for name in accelerator_names()
        }
        assert len(keys) == len(accelerator_names())

    def test_cache_key_tracks_model_version(self, dcgan_model):
        config = ArchitectureConfig.paper_default()
        options = SimulationOptions()
        register_accelerator("test-versioned", version="1")(
            lambda config=None, options=None: create_accelerator("ideal")
        )
        try:
            before = SimulationJob(
                dcgan_model, "test-versioned", config, options
            ).cache_key
            unregister_accelerator("test-versioned")
            register_accelerator("test-versioned", version="2")(
                lambda config=None, options=None: create_accelerator("ideal")
            )
            after = SimulationJob(
                dcgan_model, "test-versioned", config, options
            ).cache_key
            assert before != after
        finally:
            unregister_accelerator("test-versioned")


# ----------------------------------------------------------------------
# Session facade
# ----------------------------------------------------------------------
class TestSession:
    def test_defaults_to_the_paper_pair(self):
        session = Session()
        assert session.accelerators == ("eyeriss", "ganax")
        assert session.baseline == "eyeriss"

    def test_unknown_accelerator_rejected(self):
        with pytest.raises(UnknownAcceleratorError):
            Session(accelerators=["eyeriss", "tpu"])

    def test_baseline_must_be_compared(self):
        with pytest.raises(AnalysisError):
            Session(accelerators=["ganax", "ideal"], baseline="eyeriss")

    def test_two_way_session_matches_legacy_compare_model(self, dcgan_model):
        runner = SimulationRunner()
        session = Session(accelerators=["eyeriss", "ganax"], runner=runner)
        multi = session.compare_model(dcgan_model)
        legacy = runner.compare_model(dcgan_model)
        assert multi.as_comparison() == legacy
        assert multi.generator_speedup("ganax") == legacy.generator_speedup
        assert (
            multi.generator_energy_reduction("ganax")
            == legacy.generator_energy_reduction
        )
        assert result_bytes(multi.as_comparison()) == result_bytes(legacy)

    def test_all_registered_accelerators_complete(self, dcgan_model):
        runner = SimulationRunner()
        session = Session(accelerators=accelerator_names(), runner=runner)
        multi = session.compare_model(dcgan_model)
        assert multi.accelerators == accelerator_names()
        assert multi.generator_speedup(session.baseline) == 1.0
        for name in accelerator_names():
            assert multi.result(name).total_cycles > 0
        # the whole (model x accelerator) grid went through the cached runner
        assert runner.stats.misses == len(accelerator_names())

    def test_accepts_model_names_and_defaults_to_all_workloads(self, models):
        session = Session(runner=SimulationRunner())
        by_name = session.compare("DCGAN")
        assert set(by_name) == {"DCGAN"}
        everything = session.compare()
        assert set(everything) == {m.name for m in models}

    def test_run_single_job_through_cache(self, dcgan_model):
        runner = SimulationRunner()
        session = Session(runner=runner)
        result = session.run(dcgan_model, "ideal")
        assert result.accelerator == "ideal"
        again = session.run(dcgan_model, "ideal")
        assert again == result
        assert runner.stats.hits == 1

    def test_sweep_returns_multi_comparisons_per_label(self, dcgan_model):
        session = Session(
            accelerators=["eyeriss", "ganax", "ideal"], runner=SimulationRunner()
        )
        grid = session.sweep("num_pvs", [8, 16], models=[dcgan_model])
        assert list(grid) == ["num_pvs=8", "num_pvs=16"]
        for comparisons in grid.values():
            multi = comparisons["DCGAN"]
            assert multi.accelerators == ("eyeriss", "ganax", "ideal")
            assert multi.generator_speedup("ideal") >= multi.generator_speedup(
                "ganax"
            )

    def test_describe_lists_compared_specs(self):
        session = Session(accelerators=["ganax", "ideal"])
        described = session.describe()
        assert [entry["name"] for entry in described] == ["ganax", "ideal"]


# ----------------------------------------------------------------------
# Workload registry integration: spec strings + versioned cache keys
# ----------------------------------------------------------------------
class TestJobWorkloadResolution:
    def test_spec_string_resolves_through_the_registry(self, paper_config, options):
        job = SimulationJob("DCGAN", "ganax", paper_config, options)
        assert job.model_name == "DCGAN"
        assert job.workload_version == "1"

    def test_spec_string_and_model_instance_share_one_cache_key(
        self, dcgan_model, paper_config, options
    ):
        by_name = SimulationJob("DCGAN", "ganax", paper_config, options)
        by_model = SimulationJob(dcgan_model, "ganax", paper_config, options)
        by_family = SimulationJob("dcgan@64x64", "ganax", paper_config, options)
        assert by_name.cache_key == by_model.cache_key == by_family.cache_key

    def test_unknown_spec_string_raises(self, paper_config, options):
        from repro.errors import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError):
            SimulationJob("StyleGAN", "ganax", paper_config, options)

    def test_family_spec_jobs_execute(self, paper_config, options):
        job = SimulationJob("synthetic@d4c64", "ganax", paper_config, options)
        result = execute_job(job)
        assert result.model_name == "synthetic@d4c64"
        assert result.generator.cycles > 0

    def test_workload_version_is_folded_into_the_cache_key(
        self, dcgan_model, paper_config, options
    ):
        """Two jobs differing only in workload_version never share a cache entry."""
        base = SimulationJob(dcgan_model, "ganax", paper_config, options)
        bumped = SimulationJob(
            dcgan_model, "ganax", paper_config, options, workload_version="2"
        )
        assert base.workload_version == "1"
        assert bumped.cache_key != base.cache_key

    def test_version_bump_through_the_registry_invalidates_cached_results(
        self, paper_config, options
    ):
        from repro.workloads.registry import (
            register_workload,
            unregister_workload,
        )
        from repro.workloads.dcgan import build_dcgan

        register_workload("vbump-gan", version="1")(build_dcgan)
        try:
            before = SimulationJob("vbump-gan", "ganax", paper_config, options)
            assert before.workload_version == "1"
        finally:
            unregister_workload("vbump-gan")
        register_workload("vbump-gan", version="2")(build_dcgan)
        try:
            after = SimulationJob("vbump-gan", "ganax", paper_config, options)
            assert after.workload_version == "2"
            # same structure, same fingerprint — but the bumped version
            # separates the cache generations
            assert after.cache_key != before.cache_key
        finally:
            unregister_workload("vbump-gan")

    def test_adhoc_models_carry_an_empty_version(self, paper_config, options):
        import dataclasses

        from repro.workloads.registry import get_workload

        adhoc = dataclasses.replace(get_workload("DCGAN"), name="my-own-gan")
        job = SimulationJob(adhoc, "ganax", paper_config, options)
        assert job.workload_version == ""


class TestSessionWorkloadSpecs:
    def test_session_accepts_family_spec_strings(self):
        runner = SimulationRunner()
        session = Session(runner=runner)
        multi = session.compare_model("synthetic@d4c64")
        assert multi.model_name == "synthetic@d4c64"
        assert multi.generator_speedup("ganax") > 1.0

    def test_compare_model_resolves_exactly_once(self, monkeypatch):
        session = Session(runner=SimulationRunner())
        calls = []
        original = Session._resolve_models

        def counting(models):
            calls.append(models)
            return original(models)

        monkeypatch.setattr(Session, "_resolve_models", staticmethod(counting))
        session.compare_model("DCGAN")
        assert len(calls) == 1

    def test_explore_targets_a_workload_family(self):
        runner = SimulationRunner()
        session = Session(runner=runner)
        result = session.explore(
            accelerator="ganax",
            workload_family="synthetic",
            workload_variants=("d2c32", "d2c32z100"),
            overrides={"num_pvs": (8, 16)},
            fields=("num_pvs",),
        )
        assert len(result.evaluated) == 2
        speedups = result.evaluated[0].metrics["speedups"]
        assert set(speedups) == {"synthetic@d2c32", "synthetic@d2c32z100"}

    def test_explore_rejects_models_plus_family(self):
        session = Session(runner=SimulationRunner())
        with pytest.raises(AnalysisError):
            session.explore(models=["DCGAN"], workload_family="synthetic")
        with pytest.raises(AnalysisError):
            session.explore(workload_variants=("d2c32",))
