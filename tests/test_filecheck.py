"""The FileCheck harness itself, and the golden-program tests built on it.

The `.chk` files under ``tests/filecheck/`` pin the disassembly of
representative compiled layers (both ``skip_zeros`` modes); the mutation
tests at the bottom prove the goldens actually fail when the µop stream is
reordered or an extra µop is inserted.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.compiler import compile_layer_programs
from repro.staticcheck import (
    FileCheckError,
    filecheck,
    parse_check_file,
    run_filecheck,
)
from repro.workloads.registry import get_workload

CHK_DIR = Path(__file__).parent / "filecheck"

#: golden file -> (workload, layer, skip_zeros, schedule).  All goldens
#: compile one wave of at most 4 output columns (the harness's
#: representative tile); the ``colmajor2`` goldens pin a NON-default
#: schedule's lowering alongside the default ones.
GOLDENS = {
    "dcgan_tconv1_skip.chk": ("dcgan", "tconv1", True, "default"),
    "dcgan_tconv1_dense.chk": ("dcgan", "tconv1", False, "default"),
    "dcgan_conv1_skip.chk": ("dcgan", "conv1", True, "default"),
    "dcgan_conv5_dense.chk": ("dcgan", "conv5", False, "default"),
    "dcgan_conv1_colmajor2_skip.chk": ("dcgan", "conv1", True, "colmajor@tile2"),
    "dcgan_tconv1_colmajor2_skip.chk": ("dcgan", "tconv1", True, "colmajor@tile2"),
}


def _compile_disassembly(
    workload: str, layer: str, skip_zeros: bool, schedule: str = "default"
) -> str:
    model = get_workload(workload)
    bindings = {
        b.name: b
        for b in list(model.generator.bindings) + list(model.discriminator.bindings)
    }
    programs = compile_layer_programs(
        bindings[layer],
        num_pvs=16,
        pes_per_pv=16,
        skip_zeros=skip_zeros,
        max_waves=1,
        max_columns=4,
        schedule=schedule,
    )
    assert programs, f"{workload}/{layer} compiled to no programs"
    return programs[0].disassemble()


# ----------------------------------------------------------------------
# Harness semantics
# ----------------------------------------------------------------------
class TestDirectiveParsing:
    def test_all_directive_kinds_parse(self):
        text = (
            "; comment line\n"
            "CHECK: a\n"
            "CHECK-NEXT: b\n"
            "CHECK-DAG: c\n"
            "CHECK-COUNT-3: d\n"
        )
        kinds = [(d.kind, d.count) for d in parse_check_file(text)]
        assert kinds == [("check", 1), ("next", 1), ("dag", 1), ("count", 3)]

    def test_non_directive_lines_are_comments(self):
        directives = parse_check_file("anything at all\nCHECK: x\nmore prose\n")
        assert len(directives) == 1

    def test_custom_prefix(self):
        directives = parse_check_file("GOLD: x\nCHECK: ignored?\n", prefix="GOLD")
        assert [d.pattern for d in directives] == ["x"]

    def test_empty_pattern_rejected(self):
        with pytest.raises(FileCheckError):
            parse_check_file("CHECK:\n")

    def test_zero_count_rejected(self):
        with pytest.raises(FileCheckError):
            parse_check_file("CHECK-COUNT-0: x\n")

    def test_directive_free_file_rejected(self):
        with pytest.raises(FileCheckError):
            parse_check_file("just prose\n")


class TestMatchingSemantics:
    INPUT = "\n".join(
        ["header", "alpha 1", "beta 2", "beta 3", "gamma 4", "footer"]
    )

    def test_check_is_a_forward_search(self):
        assert run_filecheck(self.INPUT, "CHECK: alpha\nCHECK: gamma\n").ok

    def test_check_cannot_go_backwards(self):
        assert not run_filecheck(self.INPUT, "CHECK: gamma\nCHECK: alpha\n").ok

    def test_next_requires_adjacency(self):
        assert run_filecheck(self.INPUT, "CHECK: alpha\nCHECK-NEXT: beta 2\n").ok
        assert not run_filecheck(self.INPUT, "CHECK: alpha\nCHECK-NEXT: gamma\n").ok

    def test_dag_group_matches_in_any_order(self):
        check = "CHECK-DAG: beta 2\nCHECK-DAG: alpha\nCHECK: gamma\n"
        assert run_filecheck(self.INPUT, check).ok

    def test_dag_lines_are_claimed_once(self):
        # Two DAG directives matching the same single line must fail.
        assert not run_filecheck("only once", "CHECK-DAG: once\nCHECK-DAG: once\n").ok

    def test_count_requires_consecutive_matches(self):
        assert run_filecheck(self.INPUT, "CHECK-COUNT-2: beta\n").ok
        assert not run_filecheck(self.INPUT, "CHECK-COUNT-3: beta\n").ok

    def test_regex_segments(self):
        assert run_filecheck(self.INPUT, "CHECK: beta {{[0-9]+}}\n").ok
        assert not run_filecheck(self.INPUT, "CHECK: beta {{[a-z]+}}\n").ok

    def test_whitespace_is_normalised(self):
        assert run_filecheck("a    b\tc", "CHECK: a b c\n").ok

    def test_space_adjacent_to_regex_segment_is_preserved(self):
        assert not run_filecheck("ab", "CHECK: a {{b}}\n").ok
        assert run_filecheck("a b", "CHECK: a {{b}}\n").ok

    def test_failure_reports_check_line_and_context(self):
        result = run_filecheck(self.INPUT, "CHECK: alpha\nCHECK-NEXT: nope\n")
        assert not result.ok
        assert "check file line 2" in result.failures[0]
        assert ">>" in result.failures[0]

    def test_filecheck_wrapper_raises(self):
        with pytest.raises(FileCheckError):
            filecheck(self.INPUT, "CHECK: missing-line\n")


# ----------------------------------------------------------------------
# Golden programs
# ----------------------------------------------------------------------
class TestGoldenPrograms:
    @pytest.fixture(scope="class")
    def disassemblies(self):
        return {
            name: _compile_disassembly(*spec) for name, spec in GOLDENS.items()
        }

    @pytest.mark.parametrize("golden", sorted(GOLDENS))
    def test_golden_matches(self, disassemblies, golden):
        filecheck(disassemblies[golden], (CHK_DIR / golden).read_text())

    @staticmethod
    def _first_start(lines):
        return next(i for i, line in enumerate(lines) if "access.start" in line)

    @pytest.mark.parametrize("golden", sorted(GOLDENS))
    def test_golden_fails_on_reordered_stream(self, disassemblies, golden):
        """Hoisting access.start above its last cfg must break the golden."""
        lines = disassemblies[golden].splitlines()
        at = self._first_start(lines)
        lines[at - 1], lines[at] = lines[at], lines[at - 1]
        with pytest.raises(FileCheckError):
            filecheck("\n".join(lines), (CHK_DIR / golden).read_text())

    @pytest.mark.parametrize("golden", sorted(GOLDENS))
    def test_golden_fails_on_inserted_uop(self, disassemblies, golden):
        """Inserting a µop before the first start must break the golden."""
        lines = disassemblies[golden].splitlines()
        lines.insert(self._first_start(lines), "  x: access.stop %pv9, %gen0")
        with pytest.raises(FileCheckError):
            filecheck("\n".join(lines), (CHK_DIR / golden).read_text())

    def test_goldens_cover_both_modes_and_three_layers(self):
        modes = {spec[2] for spec in GOLDENS.values()}
        layers = {(spec[0], spec[1]) for spec in GOLDENS.values()}
        assert modes == {True, False}
        assert len(layers) >= 3

    def test_goldens_cover_a_non_default_schedule(self):
        schedules = {spec[3] for spec in GOLDENS.values()}
        assert "default" in schedules
        assert schedules - {"default"}

    @pytest.mark.parametrize(
        "golden",
        sorted(name for name, spec in GOLDENS.items() if spec[3] != "default"),
    )
    def test_schedule_golden_rejects_default_lowering(self, golden):
        """A non-default golden must catch the default column order.

        The seeded mutation here is the realistic one: compile the same
        layer under the *default* schedule (columns 0, 1, 2, 3 instead of
        the tiled 0, 2, 4, 6) and demand the schedule-specific golden
        refuses it — proving the golden pins the traversal order, not just
        the µop mix.
        """
        workload, layer, skip_zeros, _schedule = GOLDENS[golden]
        default_stream = _compile_disassembly(workload, layer, skip_zeros, "default")
        with pytest.raises(FileCheckError):
            filecheck(default_stream, (CHK_DIR / golden).read_text())
