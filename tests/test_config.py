"""Unit tests for the architecture configuration."""

from __future__ import annotations

import pytest

from repro.config import ArchitectureConfig, SimulationOptions
from repro.errors import ConfigurationError


class TestArchitectureConfig:
    def test_paper_default_geometry(self):
        config = ArchitectureConfig.paper_default()
        assert config.num_pvs == 16
        assert config.pes_per_pv == 16
        assert config.num_pes == 256
        assert config.frequency_hz == pytest.approx(500e6)
        assert config.data_bits == 16

    def test_paper_default_uop_buffers(self):
        config = ArchitectureConfig.paper_default()
        assert config.local_uop_entries == 16
        assert config.global_uop_entries == 32
        assert config.global_uop_bits == 64
        assert config.pv_index_bits == 4

    def test_derived_quantities(self):
        config = ArchitectureConfig.paper_default()
        assert config.data_bytes == 2
        assert config.cycle_time_s == pytest.approx(2e-9)
        assert config.peak_macs_per_cycle == 256
        assert config.cycles_to_seconds(500e6) == pytest.approx(1.0)

    def test_with_updates_returns_new_instance(self):
        base = ArchitectureConfig.paper_default()
        other = base.with_updates(num_pvs=8)
        assert other.num_pvs == 8
        assert base.num_pvs == 16

    def test_from_mapping(self):
        config = ArchitectureConfig.from_mapping({"num_pvs": 4, "pes_per_pv": 8})
        assert config.num_pes == 32

    def test_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig.from_mapping({"bogus": 1})

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(num_pvs=0)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(pes_per_pv=-1)

    def test_rejects_bad_frequency(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(frequency_hz=0)

    def test_rejects_bad_utilization_cap(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(ganax_target_utilization=0.0)
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(ganax_target_utilization=1.5)

    def test_rejects_bad_gating_fraction(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(zero_gating_energy_fraction=-0.1)

    def test_rejects_insufficient_pv_index_bits(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(pv_index_bits=2, local_uop_entries=16)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            ArchitectureConfig(dram_bandwidth_bytes_per_cycle=0)

    def test_config_is_frozen(self):
        config = ArchitectureConfig.paper_default()
        with pytest.raises(Exception):
            config.num_pvs = 4  # type: ignore[misc]


class TestSimulationOptions:
    def test_defaults(self):
        options = SimulationOptions()
        assert options.batch_size == 1
        assert options.include_discriminator
        assert options.magan_discriminator_conv_only

    def test_rejects_bad_batch(self):
        with pytest.raises(ConfigurationError):
            SimulationOptions(batch_size=0)
