"""Package-level tests: public API surface, error hierarchy, example scripts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro import errors

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestPublicApi:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_headline_workflow_via_top_level_api(self):
        model = repro.get_workload("DCGAN")
        comparison = repro.compare_model(model)
        assert comparison.generator_speedup > 1.0

    def test_simulators_exported(self):
        assert repro.EyerissSimulator().name == "eyeriss"
        assert repro.GanaxSimulator().name == "ganax"

    def test_config_exported(self):
        assert repro.ArchitectureConfig.paper_default().num_pes == 256


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.ConfigurationError,
        errors.ShapeError,
        errors.LayerError,
        errors.NetworkError,
        errors.WorkloadError,
        errors.IsaError,
        errors.AssemblerError,
        errors.ProgramError,
        errors.HardwareError,
        errors.FifoError,
        errors.BufferError_,
        errors.SimulationError,
        errors.CompilationError,
        errors.DataflowError,
        errors.AnalysisError,
        errors.ExperimentError,
    ]

    @pytest.mark.parametrize("error_type", ALL_ERRORS, ids=lambda e: e.__name__)
    def test_all_errors_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, errors.ReproError)

    def test_assembler_error_is_isa_error(self):
        assert issubclass(errors.AssemblerError, errors.IsaError)

    def test_fifo_error_is_hardware_error(self):
        assert issubclass(errors.FifoError, errors.HardwareError)

    def test_catching_repro_error_covers_library_failures(self):
        with pytest.raises(errors.ReproError):
            repro.get_workload("does-not-exist")


@pytest.mark.parametrize("script", ["quickstart.py", "isa_walkthrough.py"])
def test_example_scripts_run(script):
    """The quick examples must run end-to-end and exit cleanly."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()
