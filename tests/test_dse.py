"""Tests for the design-space exploration subsystem (repro.dse).

The load-bearing guarantees: a `DesignSpace` is faithful to the accelerator's
declared ``config_space()``; `ExhaustiveSearch` is value-identical to the
equivalent `ParameterSweep`; the `ParetoFrontier` partition is verifiably
non-dominated; and a repeated search against a warm disk cache re-simulates
nothing (100% cache hits).  Satellite coverage: `DiskResultCache.prune` and
the pinned design-point registry entries.
"""

from __future__ import annotations

import os

import pytest

from repro.accelerators import (
    create_accelerator,
    get_accelerator,
    register_ganax_design_point,
    unregister_accelerator,
)
from repro.analysis.report import format_frontier
from repro.analysis.serialization import canonical_json
from repro.analysis.sweep import ParameterSweep
from repro.config import ArchitectureConfig, SimulationOptions
from repro.dse import (
    DesignPoint,
    DesignSpace,
    DesignSpaceExplorer,
    Dimension,
    EvaluatedPoint,
    ExhaustiveSearch,
    HillClimbSearch,
    Objective,
    ParetoFrontier,
    RandomSearch,
    dominates,
    get_strategy,
    scalar_score,
)
from repro.errors import AnalysisError, ConfigurationError
from repro.experiments import experiment_ids, run_experiment
from repro.experiments.base import ExperimentContext
from repro.runner import (
    DiskResultCache,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
)
from repro.session import Session
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def small_models():
    """Two workloads keep engine tests fast while exercising the geomean."""
    return [get_workload("DCGAN"), get_workload("MAGAN")]


@pytest.fixture(scope="module")
def geometry_space():
    return DesignSpace(
        dimensions=[
            Dimension("num_pvs", (8, 16)),
            Dimension("pes_per_pv", (8, 16)),
        ]
    )


def make_explorer(models, runner=None):
    return DesignSpaceExplorer(
        models=models,
        runner=runner or SimulationRunner(backend=SerialBackend()),
    )


# ----------------------------------------------------------------------
# DesignSpace / DesignPoint
# ----------------------------------------------------------------------
class TestDesignSpace:
    def test_dimension_rejects_unknown_field_and_empty_values(self):
        with pytest.raises(ConfigurationError):
            Dimension("not_a_field", (1, 2))
        with pytest.raises(ConfigurationError):
            Dimension("num_pvs", ())

    def test_dimension_collapses_duplicate_values(self):
        assert Dimension("num_pvs", (8, 8.0, 16)).values == (8, 16)

    def test_point_is_canonical_and_hashable(self):
        a = DesignPoint.from_mapping({"pes_per_pv": 8, "num_pvs": 16.0})
        b = DesignPoint.from_mapping({"num_pvs": 16, "pes_per_pv": 8})
        assert a == b
        assert hash(a) == hash(b)
        assert a.label == "num_pvs=16,pes_per_pv=8"
        assert a.apply(ArchitectureConfig.paper_default()).num_pvs == 16

    def test_enumeration_order_and_size(self, geometry_space):
        points = list(geometry_space.points())
        assert geometry_space.size == 4
        assert [p.values["num_pvs"] for p in points] == [8, 8, 16, 16]
        assert [p.values["pes_per_pv"] for p in points] == [8, 16, 8, 16]
        assert points == [geometry_space.point_at(i) for i in range(4)]

    def test_constraints_filter_enumeration_and_sampling(self):
        space = DesignSpace(
            dimensions=[
                Dimension("num_pvs", (8, 16)),
                Dimension("pes_per_pv", (8, 16)),
            ],
            constraints=[lambda v: v["num_pvs"] * v["pes_per_pv"] <= 128],
        )
        points = list(space.points())
        assert [p.label for p in points] == [
            "num_pvs=8,pes_per_pv=8",
            "num_pvs=8,pes_per_pv=16",
            "num_pvs=16,pes_per_pv=8",
        ]
        from random import Random

        assert sorted(space.sample(10, Random(0)), key=lambda p: p.label) == sorted(
            points, key=lambda p: p.label
        )

    def test_sampling_huge_spaces_stays_bounded(self):
        """Regression: sampling must not materialize the whole index grid."""
        from random import Random

        space = DesignSpace(
            dimensions=[
                Dimension("num_pvs", tuple(range(1, 201))),
                Dimension("pes_per_pv", tuple(range(1, 201))),
                Dimension("local_uop_entries", tuple(range(1, 17))),
                Dimension("address_fifo_depth", tuple(range(1, 101))),
                Dimension("uop_fifo_depth", tuple(range(1, 101))),
            ]
        )
        assert space.size == 200 * 200 * 16 * 100 * 100  # 6.4e9 grid points
        points = space.sample(5, Random(11))
        assert len(points) == 5
        assert len(set(points)) == 5
        assert points == space.sample(5, Random(11))  # deterministic

    def test_invalid_config_is_infeasible(self):
        # pv_index_bits=1 cannot address the default 16 local uop entries.
        space = DesignSpace(dimensions=[Dimension("pv_index_bits", (1, 4))])
        assert [p.values["pv_index_bits"] for p in space.points()] == [4]

    def test_neighbors_step_one_value_per_dimension(self, geometry_space):
        corner = DesignPoint.from_mapping({"num_pvs": 8, "pes_per_pv": 8})
        labels = {p.label for p in geometry_space.neighbors(corner)}
        assert labels == {
            "num_pvs=16,pes_per_pv=8",
            "num_pvs=8,pes_per_pv=16",
        }

    def test_for_accelerator_uses_config_space(self):
        space = DesignSpace.for_accelerator("ideal")
        # the roofline only reacts to geometry + clock (+ data bits)
        assert "dram_bandwidth_bytes_per_cycle" not in space.dimension_names
        assert set(space.dimension_names) <= set(
            create_accelerator("ideal").config_space()
        )

    def test_for_accelerator_rejects_unreactive_field(self):
        with pytest.raises(ConfigurationError) as excinfo:
            DesignSpace.for_accelerator(
                "ideal", fields=("dram_bandwidth_bytes_per_cycle",)
            )
        assert "does not react" in str(excinfo.value)

    def test_for_accelerator_requires_values_for_unknown_ranges(self):
        with pytest.raises(ConfigurationError) as excinfo:
            DesignSpace.for_accelerator("ganax", fields=("data_bits",))
        assert "overrides" in str(excinfo.value)
        space = DesignSpace.for_accelerator(
            "ganax", fields=("data_bits",), overrides={"data_bits": (8, 16)}
        )
        assert space.dimensions[0].values == (8, 16)


# ----------------------------------------------------------------------
# Pareto frontier
# ----------------------------------------------------------------------
def evaluated(label_values, **objectives):
    return EvaluatedPoint(
        point=DesignPoint.from_mapping(label_values), objectives=objectives
    )


OBJECTIVES = (Objective("speedup", "max"), Objective("energy", "min"))


class TestParetoFrontier:
    def test_partition_excludes_exactly_the_dominated(self):
        good = evaluated({"num_pvs": 8}, speedup=4.0, energy=1.0)
        tradeoff = evaluated({"num_pvs": 16}, speedup=5.0, energy=2.0)
        bad = evaluated({"num_pvs": 32}, speedup=3.0, energy=3.0)
        frontier = ParetoFrontier(OBJECTIVES, [bad, tradeoff, good])
        assert set(frontier.frontier) == {good, tradeoff}
        assert frontier.dominated == (bad,)
        assert frontier.best("speedup") == tradeoff
        assert frontier.best("energy") == good

    def test_equal_points_neither_dominates(self):
        a = evaluated({"num_pvs": 8}, speedup=4.0, energy=1.0)
        b = evaluated({"num_pvs": 16}, speedup=4.0, energy=1.0)
        assert not dominates(a, b, OBJECTIVES)
        frontier = ParetoFrontier(OBJECTIVES, [a, b])
        assert set(frontier.frontier) == {a, b}

    def test_duplication_and_order_invariance(self):
        points = [
            evaluated({"num_pvs": 8}, speedup=4.0, energy=1.0),
            evaluated({"num_pvs": 16}, speedup=5.0, energy=2.0),
            evaluated({"num_pvs": 32}, speedup=3.0, energy=3.0),
        ]
        reference = ParetoFrontier(OBJECTIVES, points)
        assert ParetoFrontier(OBJECTIVES, points[::-1]) == reference
        assert ParetoFrontier(OBJECTIVES, points * 3) == reference

    def test_rejects_bad_senses_and_missing_objectives(self):
        with pytest.raises(AnalysisError):
            Objective("speedup", "maximize")
        point = evaluated({"num_pvs": 8}, speedup=4.0)
        with pytest.raises(AnalysisError):
            ParetoFrontier(OBJECTIVES, [point])

    def test_scalar_score_orders_by_product_of_ratios(self):
        better = evaluated({"num_pvs": 8}, speedup=4.0, energy=1.0)
        worse = evaluated({"num_pvs": 16}, speedup=2.0, energy=1.0)
        assert scalar_score(better, OBJECTIVES) > scalar_score(worse, OBJECTIVES)
        degenerate = evaluated({"num_pvs": 32}, speedup=0.0, energy=1.0)
        assert scalar_score(degenerate, OBJECTIVES) == float("-inf")

    def test_format_frontier_renders_partition(self):
        frontier = ParetoFrontier(
            OBJECTIVES,
            [
                evaluated({"num_pvs": 8}, speedup=4.0, energy=1.0),
                evaluated({"num_pvs": 32}, speedup=3.0, energy=3.0),
            ],
        )
        rows = [
            {
                "label": p.label,
                "objectives": dict(p.objectives),
                "on_frontier": frontier.is_on_frontier(p),
            }
            for p in (*frontier.frontier, *frontier.dominated)
        ]
        text = format_frontier("T", rows, [("speedup", "max"), ("energy", "min")])
        assert "speedup (^)" in text and "energy (v)" in text
        assert "frontier" in text and "dominated" in text


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
class TestStrategies:
    def test_get_strategy_resolves_names(self):
        assert get_strategy("exhaustive").name == "exhaustive"
        assert get_strategy("RANDOM", seed=3).name == "random"
        assert get_strategy("hillclimb").name == "hillclimb"
        with pytest.raises(ConfigurationError):
            get_strategy("bayesian")

    def test_exhaustive_rejects_insufficient_budget(self, small_models, geometry_space):
        explorer = make_explorer(small_models)
        with pytest.raises(AnalysisError) as excinfo:
            explorer.explore(
                space=geometry_space, strategy=ExhaustiveSearch(), budget=2
            )
        assert "budget" in str(excinfo.value)

    def test_random_search_is_deterministic_and_budgeted(
        self, small_models, geometry_space
    ):
        explorer = make_explorer(small_models)
        first = explorer.explore(
            space=geometry_space, strategy=RandomSearch(seed=7), budget=3
        )
        second = explorer.explore(
            space=geometry_space, strategy=RandomSearch(seed=7), budget=3
        )
        labels = [p.label for p in first.evaluated]
        assert len(labels) == 3
        assert len(set(labels)) == 3  # without replacement
        assert labels == [p.label for p in second.evaluated]

    def test_hillclimb_respects_budget_and_visits_distinct_points(
        self, small_models, geometry_space
    ):
        explorer = make_explorer(small_models)
        result = explorer.explore(
            space=geometry_space, strategy=HillClimbSearch(seed=1), budget=3
        )
        labels = [p.label for p in result.evaluated]
        assert 1 <= len(labels) <= 3
        assert len(set(labels)) == len(labels)

    def test_hillclimb_never_overshoots_budget_on_restart(self, small_models):
        """Regression: a restart after a stuck climb must not exceed budget."""
        explorer = make_explorer(small_models)
        space = explorer.space(
            fields=("num_pvs", "pes_per_pv"),
            overrides={"num_pvs": (4, 8, 16, 32), "pes_per_pv": (4, 8, 16, 32)},
        )
        for seed, budget in ((3, 2), (3, 3), (7, 2)):
            result = explorer.explore(
                space=space, strategy=HillClimbSearch(seed=seed), budget=budget
            )
            assert len(result.evaluated) <= budget, (seed, budget)

    def test_hillclimb_exhausts_small_spaces(self, small_models, geometry_space):
        explorer = make_explorer(small_models)
        result = explorer.explore(
            space=geometry_space, strategy=HillClimbSearch(seed=0), budget=10
        )
        assert len(result.evaluated) == geometry_space.size


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class TestExplorer:
    def test_exhaustive_matches_parameter_sweep_byte_identical(self, small_models):
        """Acceptance: ExhaustiveSearch == the equivalent ParameterSweep."""
        values = (16.0, 64.0)
        runner = SimulationRunner(backend=SerialBackend())
        sweep_points = ParameterSweep(small_models, runner=runner).run(
            "dram_bandwidth_bytes_per_cycle", list(values)
        )
        explorer = make_explorer(small_models)
        space = explorer.space(
            fields=("dram_bandwidth_bytes_per_cycle",),
            overrides={"dram_bandwidth_bytes_per_cycle": values},
        )
        result = explorer.explore(space=space, strategy=ExhaustiveSearch())
        assert len(result.evaluated) == len(sweep_points)
        dse_series = [p.metrics["speedups"] for p in result.evaluated]
        sweep_series = [p.speedups for p in sweep_points]
        assert canonical_json(dse_series) == canonical_json(sweep_series)

    def test_frontier_is_verifiably_non_dominated(self, small_models, geometry_space):
        """Acceptance: no frontier point dominated, dominated points excluded."""
        result = make_explorer(small_models).explore(space=geometry_space)
        frontier = result.frontier
        for a in frontier.frontier:
            for b in frontier.frontier:
                assert not dominates(a, b, frontier.objectives)
        for p in frontier.dominated:
            assert any(
                dominates(f, p, frontier.objectives) for f in frontier.frontier
            )
        assert set(frontier.frontier) | set(frontier.dominated) == set(
            result.evaluated
        )

    def test_warm_disk_cache_answers_everything(self, small_models, tmp_path):
        """Acceptance: re-search against a warm disk cache -> 100% hits."""
        space_args = dict(
            fields=("num_pvs",), overrides={"num_pvs": (8, 16, 32)}
        )
        cold_runner = SimulationRunner(cache=DiskResultCache(tmp_path / "c"))
        cold_explorer = make_explorer(small_models, runner=cold_runner)
        cold = cold_explorer.explore(space=cold_explorer.space(**space_args))
        assert cold.cache_stats.misses == cold.cache_stats.lookups > 0

        warm_runner = SimulationRunner(cache=DiskResultCache(tmp_path / "c"))
        warm_explorer = make_explorer(small_models, runner=warm_runner)
        warm = warm_explorer.explore(space=warm_explorer.space(**space_args))
        assert warm.cache_stats.misses == 0
        assert warm.cache_stats.hit_rate == 1.0
        assert warm.frontier.summary() == cold.frontier.summary()

    def test_summary_and_report_round_trip(self, small_models, geometry_space):
        result = make_explorer(small_models).explore(space=geometry_space)
        summary = result.summary()
        assert summary["accelerator"] == "ganax"
        assert summary["baseline"] == "eyeriss"
        assert summary["evaluations"] == 4
        assert len(summary["frontier"]) + len(summary["dominated"]) == 4
        assert canonical_json(summary)  # JSON-serializable
        report = result.report()
        for point in result.evaluated:
            assert point.label in report

    def test_objectives_carry_area_from_pe_count(self, small_models):
        explorer = make_explorer(small_models)
        space = explorer.space(fields=("num_pvs",), overrides={"num_pvs": (8, 16)})
        small, large = explorer.evaluate(list(space.points()))
        assert small.objectives["area_mm2"] < large.objectives["area_mm2"]
        assert small.metrics["num_pes"] == 8 * 16

    def test_area_model_follows_the_explored_family(self, small_models):
        """The area objective prices the candidate's family, not the baseline's."""
        from repro.hw.area import AreaModel

        point = DesignPoint.from_mapping({"num_pvs": 16})
        expected = {
            True: AreaModel(num_pes=256).total_area_mm2(ganax=True),
            False: AreaModel(num_pes=256).total_area_mm2(ganax=False),
        }
        for accelerator, baseline, is_ganax in (
            ("ganax", "eyeriss", True),
            ("eyeriss", "ganax", False),  # exploring the baseline family
            ("ganax", "ganax", True),
        ):
            explorer = DesignSpaceExplorer(
                accelerator=accelerator,
                baseline=baseline,
                models=small_models,
                runner=SimulationRunner(backend=SerialBackend()),
            )
            (evaluated,) = explorer.evaluate([point])
            assert evaluated.objectives["area_mm2"] == pytest.approx(
                expected[is_ganax]
            ), (accelerator, baseline)

    def test_memoized_evaluations_do_not_duplicate_trace(self, small_models):
        explorer = make_explorer(small_models)
        space = explorer.space(fields=("num_pvs",), overrides={"num_pvs": (8,)})

        class RepeatingStrategy:
            name = "repeating"

            def search(self, space, evaluate, objectives, budget=None):
                point = next(space.points())
                batch = evaluate([point, point])  # duplicate within one batch
                assert batch[0] == batch[1]
                return evaluate([point])  # and again across batches

        result = explorer.explore(space=space, strategy=RepeatingStrategy())
        assert len(result.evaluated) == 1
        summary = result.summary()
        assert summary["evaluations"] == len(summary["frontier"]) + len(
            summary["dominated"]
        )

    def test_session_explore_uses_session_runner(self, small_models):
        runner = SimulationRunner(backend=SerialBackend())
        session = Session(accelerators=("eyeriss", "ganax"), runner=runner)
        result = session.explore(
            models=["DCGAN"],
            fields=("num_pvs",),
            overrides={"num_pvs": (8, 16)},
        )
        assert result.accelerator == "ganax"
        assert result.baseline == "eyeriss"
        assert len(result.evaluated) == 2
        assert runner.stats.lookups > 0

    def test_dse_experiment_registered_and_runs(self):
        assert "dse" in experiment_ids()
        # default context: all six workloads, as `repro-experiments dse` runs
        context = ExperimentContext(runner=SimulationRunner(backend=SerialBackend()))
        result = run_experiment("dse", context)
        assert result.experiment_id == "dse"
        assert result.data["evaluations"] == 6
        # the flag must agree with the reported frontier partition
        on_frontier = any(
            entry["point"] == {"num_pvs": 16, "pes_per_pv": 16}
            for entry in result.data["frontier"]
        )
        assert result.data["paper_point_on_frontier"] == on_frontier
        assert result.report


# ----------------------------------------------------------------------
# Disk cache pruning (satellite)
# ----------------------------------------------------------------------
class TestCachePrune:
    def fill(self, cache, entries):
        """Store payloads under fake keys with controlled mtimes."""
        for offset, (key, payload) in enumerate(entries.items()):
            cache.put(key, payload)
            path = cache._path_for(key)
            stamp = 1_000_000 + offset
            os.utime(path, (stamp, stamp))

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        self.fill(cache, {"aa" + "0" * 62: b"x" * 100, "bb" + "0" * 62: b"y" * 100})
        keep_bytes = cache.size_bytes() - 1  # force exactly one eviction
        stats = cache.prune(max_bytes=keep_bytes)
        assert stats.removed_entries == 1
        assert stats.remaining_entries == 1
        assert cache.get("aa" + "0" * 62) is None  # the older entry went
        assert cache.get("bb" + "0" * 62) == b"y" * 100

    def test_prune_zero_empties_cache_and_overlay(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        self.fill(cache, {"cc" + "0" * 62: b"z"})
        stats = cache.prune(max_bytes=0)
        assert stats.removed_entries == 1
        assert stats.remaining_bytes == 0
        assert len(cache) == 0
        assert cache.get("cc" + "0" * 62) is None

    def test_prune_noop_within_budget(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        self.fill(cache, {"dd" + "0" * 62: b"w" * 10})
        stats = cache.prune(max_bytes=10_000)
        assert stats.removed_entries == 0
        assert stats.remaining_entries == 1
        assert stats.remaining_bytes == cache.size_bytes()

    def test_prune_rejects_negative_budget(self, tmp_path):
        with pytest.raises(AnalysisError):
            DiskResultCache(tmp_path).prune(max_bytes=-1)

    def test_get_refreshes_recency(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        self.fill(cache, {"ee" + "0" * 62: b"old", "ff" + "0" * 62: b"new"})
        # A fresh cache instance re-reads 'ee' from disk, touching its mtime,
        # so 'ff' (untouched since fill) becomes the eviction victim.
        reader = DiskResultCache(tmp_path)
        assert reader.get("ee" + "0" * 62) == b"old"
        stats = reader.prune(max_bytes=reader.size_bytes() - 1)
        assert stats.removed_entries == 1
        assert reader.get("ee" + "0" * 62) == b"old"
        assert reader.get("ff" + "0" * 62) is None


# ----------------------------------------------------------------------
# Pinned design points (satellite)
# ----------------------------------------------------------------------
class TestDesignPoints:
    def test_ganax_design_point_matches_explicit_config(self):
        name = register_ganax_design_point(8, 32)
        try:
            assert name == "ganax@8x32"
            spec = get_accelerator(name)
            assert "num_pvs=8" in spec.version
            runner = SimulationRunner(backend=SerialBackend())
            model = get_workload("DCGAN")
            pinned = runner.run_job(
                SimulationJob(
                    model=model,
                    accelerator=name,
                    config=ArchitectureConfig.paper_default(),
                    options=SimulationOptions(),
                )
            )
            explicit = create_accelerator(
                "ganax",
                config=ArchitectureConfig.paper_default().with_updates(
                    num_pvs=8, pes_per_pv=32
                ),
            ).simulate_gan(model)
            assert pinned.generator.cycles == explicit.generator.cycles
            assert pinned.generator.energy_pj == explicit.generator.energy_pj
            assert pinned.accelerator == name
        finally:
            unregister_accelerator(name)

    def test_pinned_fields_leave_config_space(self):
        name = register_ganax_design_point(16, 8, name="ganax@pin-test")
        try:
            model = create_accelerator(name)
            assert "num_pvs" not in model.config_space()
            assert "pes_per_pv" not in model.config_space()
            assert model.config.num_pvs == 16
            assert model.config.pes_per_pv == 8
        finally:
            unregister_accelerator(name)

    def test_design_point_validates_fields(self):
        from repro.accelerators import register_design_point
        from repro.core.simulator import GanaxSimulator

        with pytest.raises(ConfigurationError):
            register_design_point(GanaxSimulator, "ganax@bad", not_a_field=3)
        with pytest.raises(ConfigurationError):
            register_design_point(GanaxSimulator, "ganax@empty")
