"""Layer-grain memoization: fingerprints, the memo store, and result parity.

The runner caches below the job level: each (layer structure x input shape x
accelerator identity x config x canonical options) combination fingerprints
to one memo key (:func:`repro.analysis.serialization.layer_fingerprint`), and
:func:`repro.runner.execute_job` assembles network totals from per-layer memo
hits.  These tests pin the contract: fingerprints are stable across registry
round-trips and exclude the layer name, memo hits never change results
(cold == warm, enabled == disabled), and per-layer sums equal the job-level
golden totals on every backend.
"""

from __future__ import annotations

import os
import time

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.accelerators.registry import get_accelerator
from repro.analysis.serialization import layer_fingerprint
from repro.config import ArchitectureConfig, SimulationOptions
from repro.errors import AnalysisError
from repro.nn.layers import ConvLayer, TransposedConvLayer
from repro.nn.network import GANModel, LayerBinding, Network
from repro.nn.shapes import FeatureMapShape
from repro.runner import (
    LAYER_MEMO_DIR_ENV,
    LAYER_MEMO_ENV,
    AsyncioBackend,
    LayerMemoStore,
    ProcessPoolBackend,
    SerialBackend,
    SimulationJob,
    configure_layer_memo,
    execute_job,
    get_layer_memo,
)
from repro.runner import cache as cache_module
from repro.workloads.registry import get_workload, resolve_workload, workload_names
from repro.workloads.synthetic import build_synthetic

from test_golden_regression import GOLDEN, RELATIVE_TOLERANCE


@pytest.fixture
def memo_state():
    """Snapshot and restore the process-global layer memo around a test."""
    saved_store = cache_module._layer_memo
    saved_flag = cache_module._layer_memo_configured
    saved_env = {
        key: os.environ.get(key) for key in (LAYER_MEMO_ENV, LAYER_MEMO_DIR_ENV)
    }
    yield
    with cache_module._layer_memo_lock:
        cache_module._layer_memo = saved_store
        cache_module._layer_memo_configured = saved_flag
    for key, value in saved_env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value


@pytest.fixture
def fresh_memo(memo_state):
    """A fresh in-memory store installed as the process-global layer memo."""
    return configure_layer_memo()


def _tconv_binding(name: str) -> LayerBinding:
    layer = TransposedConvLayer(
        name=name, out_channels=8, kernel=4, stride=2, padding=1
    )
    input_shape = FeatureMapShape.image(16, 8, 8)
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


def _tiny_gan(model_name: str, layer_prefix: str) -> GANModel:
    """A minimal ad-hoc GAN whose layer names are controllable."""
    gen_layer = TransposedConvLayer(
        name=f"{layer_prefix}_tconv", out_channels=3, kernel=4, stride=2, padding=1
    )
    disc_layer = ConvLayer(
        name=f"{layer_prefix}_conv", out_channels=8, kernel=4, stride=2, padding=1
    )
    return GANModel(
        name=model_name,
        generator=Network(
            f"{model_name}_gen", FeatureMapShape.image(16, 8, 8), [gen_layer]
        ),
        discriminator=Network(
            f"{model_name}_disc", FeatureMapShape.image(3, 16, 16), [disc_layer]
        ),
    )


class TestLayerFingerprint:
    def test_excludes_layer_name(self, paper_config, options):
        a = _tconv_binding("layer_a")
        b = _tconv_binding("completely_different_name")
        assert layer_fingerprint(
            a, "ganax", "1", paper_config, options
        ) == layer_fingerprint(b, "ganax", "1", paper_config, options)

    def test_distinguishes_every_context_input(self, paper_config, options):
        binding = _tconv_binding("probe")
        base = layer_fingerprint(binding, "ganax", "1", paper_config, options)
        assert base != layer_fingerprint(binding, "eyeriss", "1", paper_config, options)
        assert base != layer_fingerprint(binding, "ganax", "2", paper_config, options)
        assert base != layer_fingerprint(
            binding, "ganax", "1", paper_config.with_updates(num_pvs=4), options
        )
        assert base != layer_fingerprint(
            binding, "ganax", "1", paper_config, options.with_updates(batch_size=2)
        )

    def test_distinguishes_layer_structure_and_input_shape(
        self, paper_config, options
    ):
        base = layer_fingerprint(
            _tconv_binding("probe"), "ganax", "1", paper_config, options
        )
        wider = TransposedConvLayer(
            name="probe", out_channels=16, kernel=4, stride=2, padding=1
        )
        wider_binding = LayerBinding(
            index=0,
            layer=wider,
            input_shape=FeatureMapShape.image(16, 8, 8),
            output_shape=wider.output_shape(FeatureMapShape.image(16, 8, 8)),
        )
        assert base != layer_fingerprint(
            wider_binding, "ganax", "1", paper_config, options
        )
        layer = TransposedConvLayer(
            name="probe", out_channels=8, kernel=4, stride=2, padding=1
        )
        bigger_input = FeatureMapShape.image(16, 16, 16)
        bigger_binding = LayerBinding(
            index=0,
            layer=layer,
            input_shape=bigger_input,
            output_shape=layer.output_shape(bigger_input),
        )
        assert base != layer_fingerprint(
            bigger_binding, "ganax", "1", paper_config, options
        )

    @pytest.mark.parametrize("model_name", sorted(GOLDEN))
    def test_stable_across_registry_round_trips(
        self, model_name, paper_config, options
    ):
        """Rebuilding a spec yields byte-identical per-layer fingerprints."""
        spec = resolve_workload(model_name)
        first = get_workload(model_name)
        rebuilt = spec.build()  # a fresh, uncached model instance
        for network in ("generator", "discriminator"):
            for a, b in zip(
                getattr(first, network).bindings, getattr(rebuilt, network).bindings
            ):
                assert layer_fingerprint(
                    a, "ganax", "1", paper_config, options
                ) == layer_fingerprint(b, "ganax", "1", paper_config, options)

    @settings(max_examples=10, deadline=None)
    @given(
        depth=st.integers(min_value=1, max_value=6),
        base_channels=st.sampled_from([8, 32, 64]),
        kernel=st.integers(min_value=2, max_value=5),
        stride=st.sampled_from([1, 2]),
        upsample_percent=st.sampled_from([0, 50, 100]),
    )
    def test_synthetic_rebuilds_fingerprint_identically(
        self, depth, base_channels, kernel, stride, upsample_percent
    ):
        config = ArchitectureConfig.paper_default()
        options = SimulationOptions()
        knobs = dict(
            depth=depth,
            base_channels=base_channels,
            kernel=kernel,
            stride=stride,
            upsample_percent=upsample_percent,
        )
        try:
            first = build_synthetic(**knobs)
        except Exception:
            assume(False)  # no exact-upsampling geometry for these knobs
        second = build_synthetic(**knobs)
        for a, b in zip(first.generator.bindings, second.generator.bindings):
            assert layer_fingerprint(
                a, "ganax", "1", config, options
            ) == layer_fingerprint(b, "ganax", "1", config, options)


class TestLayerMemoStore:
    def _result(self, key_name: str = "probe"):
        simulator = get_accelerator("ganax").create()
        return simulator.simulate_layer(_tconv_binding(key_name))

    def test_hit_miss_store_accounting(self):
        store = LayerMemoStore()
        assert store.get("aa" * 32) is None
        assert store.stats.misses == 1
        result = self._result()
        store.put("aa" * 32, result)
        assert store.stats.stores == 1
        assert store.get("aa" * 32) == result
        assert store.stats.hits == 1
        assert store.stats.hit_rate == 0.5

    def test_lru_eviction_bounds_residency(self):
        store = LayerMemoStore(max_entries=2)
        result = self._result()
        for key in ("aa" * 32, "bb" * 32, "cc" * 32):
            store.put(key, result)
        assert len(store) == 2
        assert store.get("aa" * 32) is None  # oldest evicted
        assert store.get("cc" * 32) is not None

    def test_disk_tier_shared_between_instances(self, tmp_path):
        result = self._result()
        key = "ab" * 32
        LayerMemoStore(root=tmp_path / "layers").put(key, result)
        cold = LayerMemoStore(root=tmp_path / "layers")
        assert cold.get(key) == result
        assert (tmp_path / "layers" / key[:2] / f"{key}.pkl").exists()

    def test_disk_vanished_entry_is_a_miss(self, tmp_path):
        key = "cd" * 32
        LayerMemoStore(root=tmp_path / "layers").put(key, self._result())
        (tmp_path / "layers" / key[:2] / f"{key}.pkl").unlink()
        assert LayerMemoStore(root=tmp_path / "layers").get(key) is None

    def test_disk_corrupt_entry_dropped_as_miss(self, tmp_path):
        key = "ef" * 32
        store = LayerMemoStore(root=tmp_path / "layers")
        store.put(key, self._result())
        path = tmp_path / "layers" / key[:2] / f"{key}.pkl"
        path.write_bytes(b"torn write")
        assert LayerMemoStore(root=tmp_path / "layers").get(key) is None
        assert not path.exists()

    def test_rejects_nonpositive_capacity_and_file_root(self, tmp_path):
        with pytest.raises(AnalysisError):
            LayerMemoStore(max_entries=0)
        bogus = tmp_path / "file"
        bogus.write_text("not a directory")
        with pytest.raises(AnalysisError):
            LayerMemoStore(root=bogus)

    def test_configure_propagates_through_environment(self, memo_state, tmp_path):
        configure_layer_memo(root=tmp_path / "layers")
        assert os.environ[LAYER_MEMO_ENV] == "1"
        assert os.environ[LAYER_MEMO_DIR_ENV] == str(tmp_path / "layers")
        # A worker process starts unconfigured and rebuilds from the env.
        with cache_module._layer_memo_lock:
            cache_module._layer_memo = None
            cache_module._layer_memo_configured = False
        rebuilt = get_layer_memo()
        assert rebuilt is not None
        assert rebuilt.root == tmp_path / "layers"
        configure_layer_memo(enabled=False)
        assert os.environ[LAYER_MEMO_ENV] == "0"
        with cache_module._layer_memo_lock:
            cache_module._layer_memo_configured = False
        assert get_layer_memo() is None


class TestMemoizedExecution:
    def test_cold_equals_warm(self, fresh_memo, dcgan_model, paper_config, options):
        job = SimulationJob(dcgan_model, "ganax", paper_config, options)
        cold = execute_job(job)
        assert fresh_memo.stats.stores > 0
        hits_before = fresh_memo.stats.hits
        warm = execute_job(job)
        assert fresh_memo.stats.hits > hits_before
        assert warm == cold

    def test_disabled_memo_matches_enabled(
        self, memo_state, dcgan_model, paper_config, options
    ):
        job = SimulationJob(dcgan_model, "ganax", paper_config, options)
        configure_layer_memo(enabled=False)
        plain = execute_job(job)
        configure_layer_memo()
        memoized = execute_job(job)
        assert memoized == plain

    def test_workloads_sharing_shapes_share_entries(
        self, fresh_memo, paper_config, options
    ):
        """Two distinct workloads with common layer shapes reuse memo entries."""
        first = SimulationJob(
            build_synthetic(latent_dim=100), "ganax", paper_config, options
        )
        second = SimulationJob(
            build_synthetic(latent_dim=128), "ganax", paper_config, options
        )
        assert first.cache_key != second.cache_key  # distinct at the job tier
        execute_job(first)
        hits_before = fresh_memo.stats.hits
        stores_before = fresh_memo.stats.stores
        execute_job(second)
        assert fresh_memo.stats.hits > hits_before  # shared tconv stack
        assert fresh_memo.stats.stores > stores_before  # differing latent head

    def test_hits_are_relabelled_with_the_requesting_name(
        self, fresh_memo, paper_config, options
    ):
        model_a = _tiny_gan("tiny_a", "alpha")
        model_b = _tiny_gan("tiny_b", "beta")
        execute_job(SimulationJob(model_a, "ganax", paper_config, options))
        result_b = execute_job(SimulationJob(model_b, "ganax", paper_config, options))
        assert fresh_memo.stats.hits > 0  # b's layers were served from a's runs
        names = [layer.layer_name for layer in result_b.generator.layer_results]
        assert names == ["beta_tconv"]


class TestBackendLayerTotals:
    """Sum-of-layer results equals the job-level golden totals everywhere."""

    @pytest.fixture(
        params=["serial", "process-pool", "asyncio"], ids=str, scope="class"
    )
    def backend(self, request):
        if request.param == "serial":
            backend = SerialBackend()
        elif request.param == "process-pool":
            backend = ProcessPoolBackend(max_workers=2)
        else:
            backend = AsyncioBackend(max_workers=2)
        yield backend
        backend.close()

    def test_layer_sums_match_golden_job_totals(self, backend, paper_config, options):
        jobs = []
        for name in workload_names():
            jobs.extend(
                SimulationJob.comparison_pair(get_workload(name), paper_config, options)
            )
        results = backend.run_jobs(jobs)
        by_key = {}
        for job, result in zip(jobs, results):
            generator = result.generator
            assert generator.cycles == sum(
                layer.cycles for layer in generator.layer_results
            )
            assert generator.energy_pj == pytest.approx(
                sum(layer.energy.total_pj for layer in generator.layer_results),
                rel=1e-12,
            )
            by_key[(job.model_name, job.accelerator)] = result
        for name, (golden_speedup, _) in GOLDEN.items():
            eyeriss = by_key[(name, "eyeriss")].generator.cycles
            ganax = by_key[(name, "ganax")].generator.cycles
            assert eyeriss / ganax == pytest.approx(
                golden_speedup, rel=RELATIVE_TOLERANCE
            )
