"""Unit and property tests for the 16-bit fixed-point datapath model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.hw.fixed_point import (
    FixedPointAccumulator,
    FixedPointFormat,
    dequantize_code,
    quantization_error,
    quantize,
    quantize_to_code,
)


class TestFixedPointFormat:
    def test_q2_13_is_16_bits(self):
        fmt = FixedPointFormat.q2_13()
        assert fmt.total_bits == 16
        assert fmt.scale == pytest.approx(2 ** -13)

    def test_q0_15_is_16_bits(self):
        fmt = FixedPointFormat.q0_15()
        assert fmt.total_bits == 16
        assert fmt.max_value < 1.0
        assert fmt.min_value == -1.0

    def test_range_is_asymmetric_twos_complement(self):
        fmt = FixedPointFormat.q2_13()
        assert fmt.max_value == pytest.approx(4.0 - fmt.scale)
        assert fmt.min_value == pytest.approx(-4.0)

    def test_accumulator_format_has_guard_bits(self):
        fmt = FixedPointFormat.accumulator(guard_bits=8)
        assert fmt.integer_bits == 10
        assert fmt.total_bits == 24

    def test_invalid_formats_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPointFormat(integer_bits=-1, fraction_bits=4)
        with pytest.raises(ConfigurationError):
            FixedPointFormat(integer_bits=0, fraction_bits=0)
        with pytest.raises(ConfigurationError):
            FixedPointFormat.accumulator(guard_bits=-1)


class TestQuantization:
    def test_exact_values_roundtrip(self):
        fmt = FixedPointFormat.q2_13()
        values = np.array([0.0, fmt.scale, -fmt.scale, 1.0, -2.5])
        assert np.allclose(quantize(values, fmt), values)

    def test_error_bounded_by_half_lsb(self, rng):
        fmt = FixedPointFormat.q2_13()
        values = rng.uniform(-3.9, 3.9, size=1000)
        assert quantization_error(values, fmt) <= fmt.scale / 2 + 1e-12

    def test_saturation_clamps_to_range(self):
        fmt = FixedPointFormat.q2_13()
        assert quantize(100.0, fmt) == pytest.approx(fmt.max_value)
        assert quantize(-100.0, fmt) == pytest.approx(fmt.min_value)

    def test_codes_are_integers_in_range(self, rng):
        fmt = FixedPointFormat.q0_15()
        codes = quantize_to_code(rng.uniform(-2, 2, size=100), fmt)
        assert codes.dtype == np.int64
        assert codes.max() <= fmt.max_code
        assert codes.min() >= fmt.min_code

    def test_dequantize_inverts_codes(self):
        fmt = FixedPointFormat.q2_13()
        codes = np.array([0, 1, -1, fmt.max_code, fmt.min_code])
        values = dequantize_code(codes, fmt)
        assert np.array_equal(quantize_to_code(values, fmt), codes)

    def test_empty_input_error_is_zero(self):
        assert quantization_error(np.array([]), FixedPointFormat.q2_13()) == 0.0

    @given(st.floats(min_value=-3.5, max_value=3.5, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_quantize_is_idempotent(self, value):
        fmt = FixedPointFormat.q2_13()
        once = quantize(value, fmt)
        assert quantize(once, fmt) == pytest.approx(float(once))

    @given(
        st.floats(min_value=-3.5, max_value=3.5, allow_nan=False),
        st.floats(min_value=-3.5, max_value=3.5, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantization_is_monotone(self, a, b):
        fmt = FixedPointFormat.q2_13()
        low, high = min(a, b), max(a, b)
        assert quantize(low, fmt) <= quantize(high, fmt)


class TestAccumulator:
    def test_dot_product_close_to_float(self, rng):
        accumulator = FixedPointAccumulator()
        activations = rng.uniform(-1, 1, size=64)
        weights = rng.uniform(-0.5, 0.5, size=64)
        accumulator.mac_many(activations, weights)
        reference = float(np.dot(activations, weights))
        assert accumulator.value == pytest.approx(reference, abs=1e-2)
        assert accumulator.macs_performed == 64
        assert not accumulator.saturated

    def test_readout_saturates_to_activation_range(self):
        accumulator = FixedPointAccumulator()
        for _ in range(100):
            accumulator.mac(3.0, 0.9)
        assert accumulator.read_out() == pytest.approx(
            accumulator.activation_format.max_value
        )

    def test_guard_bits_prevent_overflow_for_kernel_sized_sums(self):
        # A 5x5x512-tap dot product of bounded operands stays within the wide
        # accumulator when 8 guard bits are provided.
        accumulator = FixedPointAccumulator(guard_bits=8)
        taps = 25
        for _ in range(taps):
            accumulator.mac(2.0, 0.5)
        assert not accumulator.saturated
        assert accumulator.value == pytest.approx(taps * 1.0, rel=1e-3)

    def test_saturation_flag_on_overflow(self):
        accumulator = FixedPointAccumulator(guard_bits=0)
        for _ in range(1000):
            accumulator.mac(3.9, 0.999)
        assert accumulator.saturated

    def test_reset_clears_state(self):
        accumulator = FixedPointAccumulator()
        accumulator.mac(1.0, 1.0)
        accumulator.reset()
        assert accumulator.value == 0.0
        assert accumulator.macs_performed == 0

    def test_wide_format_width(self):
        accumulator = FixedPointAccumulator(guard_bits=8)
        assert accumulator.wide_format.fraction_bits == 13 + 15
        assert accumulator.wide_format.integer_bits == 2 + 0 + 8

    def test_invalid_guard_bits(self):
        with pytest.raises(ConfigurationError):
            FixedPointAccumulator(guard_bits=-2)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2 ** 16 - 1))
    @settings(max_examples=50, deadline=None)
    def test_accumulator_matches_integer_model(self, length, seed):
        """The accumulator equals exact integer arithmetic on quantised codes."""
        rng = np.random.default_rng(seed)
        activations = rng.uniform(-2, 2, size=length)
        weights = rng.uniform(-0.9, 0.9, size=length)
        accumulator = FixedPointAccumulator()
        accumulator.mac_many(activations, weights)
        a_fmt, w_fmt = accumulator.activation_format, accumulator.weight_format
        expected_code = int(
            np.sum(quantize_to_code(activations, a_fmt) * quantize_to_code(weights, w_fmt))
        )
        expected = expected_code * accumulator.wide_format.scale
        assert accumulator.value == pytest.approx(expected)


class TestWorkloadValueRanges:
    def test_generator_activations_fit_q2_13(self, rng):
        """GAN generator activations are tanh/sigmoid/ReLU-of-normalised data:
        a Q2.13 activation grid covers them with < 1 LSB of error."""
        fmt = FixedPointFormat.q2_13()
        activations = np.tanh(rng.standard_normal(10_000) * 2.0)
        assert quantization_error(activations, fmt) <= fmt.scale

    def test_trained_weight_scale_fits_q0_15(self, rng):
        """DCGAN-style weights are initialised with sigma=0.02 and stay well
        inside (-1, 1); Q0.15 represents them with < 1 LSB of error."""
        fmt = FixedPointFormat.q0_15()
        weights = rng.normal(0.0, 0.02, size=10_000)
        assert np.all(np.abs(weights) < fmt.max_value)
        assert quantization_error(weights, fmt) <= fmt.scale
