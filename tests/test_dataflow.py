"""Unit tests for the GANAX dataflow (output/filter-row reorganization)."""

from __future__ import annotations

import pytest

from repro.core.dataflow import (
    average_active_filter_rows,
    build_schedule,
    pv_assignment,
)
from repro.errors import DataflowError
from repro.nn.layers import ActivationLayer, ConvLayer, TransposedConvLayer
from repro.nn.network import LayerBinding
from repro.nn.shapes import FeatureMapShape
from repro.nn.zero_analysis import analyze_transposed_conv


def _bind(layer, input_shape):
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


class TestTransposedConvSchedule:
    def test_paper_example_two_groups(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        assert schedule.num_patterns == 2
        assert schedule.output_rows == 7
        assert schedule.output_cols == 7

    def test_paper_example_group_filter_rows(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        by_phase = {g.phase: g for g in schedule.row_groups}
        assert by_phase[0].filter_rows == (0, 2, 4)
        assert by_phase[1].filter_rows == (1, 3)

    def test_paper_example_accumulation_depth_reduced(self, example_tconv_binding):
        # The accumulation chain shrinks from 5 to 3 (even rows) / 2 (odd rows).
        schedule = build_schedule(example_tconv_binding)
        depths = sorted(g.accumulation_depth for g in schedule.row_groups)
        assert depths == [2, 3]

    def test_paper_example_idle_fraction_is_half(self, example_tconv_binding):
        # Figure 4(b): 50% of the compute nodes are idle before reorganization.
        schedule = build_schedule(example_tconv_binding)
        assert schedule.baseline_idle_fraction() == pytest.approx(0.5, abs=0.05)

    def test_groups_cover_all_output_rows_exactly_once(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        covered = sorted(row for g in schedule.row_groups for row in g.output_rows)
        assert covered == list(range(schedule.output_rows))

    def test_rows_within_group_share_phase(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        for group in schedule.row_groups:
            assert all(row % schedule.stride_rows == group.phase for row in group.output_rows)

    def test_column_segments_cover_all_columns(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        for group in schedule.row_groups:
            covered = sorted(c for s in group.column_segments for c in s.columns)
            assert covered == list(range(schedule.output_cols))

    def test_group_for_row_lookup(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        assert schedule.group_for_row(2).phase == 0
        assert schedule.group_for_row(3).phase == 1
        with pytest.raises(DataflowError):
            schedule.group_for_row(99)

    def test_consistent_with_zero_analysis(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        analysis = analyze_transposed_conv(
            example_tconv_binding.layer, example_tconv_binding.input_shape
        )
        schedule_rows = {g.phase: g.filter_rows for g in schedule.row_groups}
        analysis_rows = {p.phase: p.consequential_filter_rows for p in analysis.row_patterns}
        assert schedule_rows == analysis_rows

    def test_dcgan_geometry_uniform_two_taps(self, dcgan_like_tconv_binding):
        # Kernel 4 / stride 2: every group uses exactly 2 filter rows and every
        # column phase exactly 2 kernel columns.
        schedule = build_schedule(dcgan_like_tconv_binding)
        assert schedule.num_patterns == 2
        assert all(g.active_pes == 2 for g in schedule.row_groups)
        for group in schedule.row_groups:
            assert all(s.taps == 2 for s in group.column_segments)
        assert schedule.is_uniform

    def test_stride1_is_single_simd_pattern(self):
        layer = TransposedConvLayer(name="t", out_channels=2, kernel=3, stride=1, padding=1)
        schedule = build_schedule(_bind(layer, FeatureMapShape.image(2, 8, 8)))
        assert schedule.num_patterns == 1
        assert schedule.is_uniform

    def test_stride3_three_patterns(self):
        layer = TransposedConvLayer(name="t", out_channels=1, kernel=6, stride=3, padding=2)
        schedule = build_schedule(_bind(layer, FeatureMapShape.image(1, 5, 5)))
        assert schedule.num_patterns == 3

    def test_3d_layer_schedules_one_slice(self):
        layer = TransposedConvLayer(
            name="t3", out_channels=2, kernel=4, stride=2, padding=1, rank=3
        )
        schedule = build_schedule(_bind(layer, FeatureMapShape.volume(2, 4, 4, 4)))
        assert schedule.output_rows == 8
        assert schedule.output_cols == 8
        assert schedule.num_patterns == 2

    def test_average_active_filter_rows_paper_example(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        # 4 even rows use 3 filter rows, 3 odd rows use 2: mean = (4*3+3*2)/7.
        assert average_active_filter_rows(schedule) == pytest.approx((4 * 3 + 3 * 2) / 7)


class TestConvSchedule:
    def test_conv_schedule_is_single_group(self, conv_binding):
        schedule = build_schedule(conv_binding)
        assert schedule.num_patterns == 1
        group = schedule.row_groups[0]
        assert group.filter_rows == tuple(range(4))
        assert schedule.is_uniform

    def test_conv_idle_fraction_is_zero(self, conv_binding):
        assert build_schedule(conv_binding).baseline_idle_fraction() == 0.0

    def test_non_convolutional_layer_rejected(self):
        layer = ActivationLayer(name="a", function="relu")
        binding = LayerBinding(
            index=0,
            layer=layer,
            input_shape=FeatureMapShape.image(1, 4, 4),
            output_shape=FeatureMapShape.image(1, 4, 4),
        )
        with pytest.raises(DataflowError):
            build_schedule(binding)


class TestPvAssignment:
    def test_round_robin_covers_all_rows(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        assignment = pv_assignment(schedule, num_pvs=4)
        assigned = sorted(row for rows in assignment.values() for row in rows)
        assert assigned == list(range(schedule.output_rows))

    def test_adjacent_rows_of_same_group_land_on_adjacent_pvs(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        assignment = pv_assignment(schedule, num_pvs=16)
        even_rows = schedule.row_groups[0].output_rows
        pv_of = {row: pv for pv, rows in assignment.items() for row in rows}
        pvs = [pv_of[row] for row in even_rows]
        assert pvs == list(range(len(even_rows)))

    def test_invalid_pv_count(self, example_tconv_binding):
        schedule = build_schedule(example_tconv_binding)
        with pytest.raises(DataflowError):
            pv_assignment(schedule, num_pvs=0)
