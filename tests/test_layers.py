"""Unit tests for layer specifications and their MAC accounting."""

from __future__ import annotations

import pytest

from repro.errors import LayerError, ShapeError
from repro.nn.layers import (
    ActivationLayer,
    BatchNormLayer,
    ConvLayer,
    DenseLayer,
    PoolingLayer,
    ReshapeLayer,
    TransposedConvLayer,
)
from repro.nn.shapes import FeatureMapShape


class TestConvLayer:
    def test_output_shape_dcgan_discriminator(self):
        layer = ConvLayer(name="c1", out_channels=64, kernel=4, stride=2, padding=1)
        out = layer.output_shape(FeatureMapShape.image(3, 64, 64))
        assert out.as_tuple() == (64, 32, 32)

    def test_weight_count(self):
        layer = ConvLayer(name="c1", out_channels=8, kernel=3, stride=1, padding=1)
        assert layer.weight_count(FeatureMapShape.image(4, 8, 8)) == 8 * 4 * 9

    def test_total_macs(self):
        layer = ConvLayer(name="c1", out_channels=2, kernel=3, stride=1, padding=1)
        input_shape = FeatureMapShape.image(3, 4, 4)
        # out 2x4x4, each output element does 3*9 MACs
        assert layer.total_macs(input_shape) == 2 * 16 * 3 * 9

    def test_conv_is_fully_consequential(self):
        layer = ConvLayer(name="c1", out_channels=2, kernel=3, stride=2, padding=1)
        shape = FeatureMapShape.image(3, 8, 8)
        assert layer.consequential_macs(shape) == layer.total_macs(shape)
        assert layer.inconsequential_fraction(shape) == 0.0

    def test_rank3_conv(self):
        layer = ConvLayer(name="c3d", out_channels=4, kernel=4, stride=2, padding=1, rank=3)
        out = layer.output_shape(FeatureMapShape.volume(2, 8, 8, 8))
        assert out.as_tuple() == (4, 4, 4, 4)

    def test_rejects_wrong_rank_input(self):
        layer = ConvLayer(name="c1", out_channels=2, kernel=3, stride=1, padding=1)
        with pytest.raises(ShapeError):
            layer.output_shape(FeatureMapShape.volume(2, 4, 4, 4))

    def test_rejects_bad_out_channels(self):
        with pytest.raises(LayerError):
            ConvLayer(name="c1", out_channels=0, kernel=3, stride=1, padding=0)

    def test_rejects_empty_name(self):
        with pytest.raises(LayerError):
            ConvLayer(name="", out_channels=2, kernel=3, stride=1, padding=0)

    def test_is_convolutional_flags(self):
        layer = ConvLayer(name="c1", out_channels=2, kernel=3, stride=1, padding=0)
        assert layer.is_convolutional
        assert not layer.is_transposed


class TestTransposedConvLayer:
    def test_output_shape_doubles(self):
        layer = TransposedConvLayer(name="t1", out_channels=64, kernel=4, stride=2, padding=1)
        out = layer.output_shape(FeatureMapShape.image(128, 8, 8))
        assert out.as_tuple() == (64, 16, 16)

    def test_output_shape_paper_example(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=5, stride=2, padding=2)
        out = layer.output_shape(FeatureMapShape.image(1, 4, 4))
        assert out.as_tuple() == (1, 7, 7)

    def test_output_padding(self):
        layer = TransposedConvLayer(
            name="t1", out_channels=3, kernel=5, stride=2, padding=2, output_padding=1
        )
        out = layer.output_shape(FeatureMapShape.image(8, 8, 8))
        assert out.spatial == (16, 16)

    def test_zero_inserted_spatial(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=5, stride=2, padding=2)
        assert layer.zero_inserted_spatial(FeatureMapShape.image(1, 4, 4)) == (7, 7)

    def test_expanded_spatial_covers_all_windows(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=5, stride=2, padding=2)
        shape = FeatureMapShape.image(1, 4, 4)
        out = layer.output_shape(shape)
        expanded = layer.expanded_spatial(shape)
        assert expanded == tuple(o + 5 - 1 for o in out.spatial)

    def test_total_macs_counts_dense_window(self):
        layer = TransposedConvLayer(name="t1", out_channels=2, kernel=4, stride=2, padding=1)
        shape = FeatureMapShape.image(3, 4, 4)
        out = layer.output_shape(shape)
        assert layer.total_macs(shape) == out.spatial_size * 2 * 3 * 16

    def test_inconsequential_fraction_stride2_kernel4(self):
        # For kernel 4 / stride 2 every output uses exactly 2x2 of the 4x4
        # taps in the interior, so the inconsequential fraction approaches 75%.
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=4, stride=2, padding=1)
        shape = FeatureMapShape.image(1, 32, 32)
        assert 0.70 < layer.inconsequential_fraction(shape) < 0.76

    def test_inconsequential_fraction_stride1_is_low(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=3, stride=1, padding=1)
        shape = FeatureMapShape.image(1, 16, 16)
        # Stride 1 inserts no zeros; only border effects remain.
        assert layer.inconsequential_fraction(shape) < 0.25

    def test_consequential_taps_along_dim_phases(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=5, stride=2, padding=2)
        shape = FeatureMapShape.image(1, 4, 4)
        taps = layer.consequential_taps_along_dim(shape, 0)
        assert len(taps) == 7
        # Interior rows alternate between 3 and 2 consequential taps.
        assert set(taps[1:-1]) == {2, 3}

    def test_rejects_padding_exceeding_kernel(self):
        with pytest.raises(LayerError):
            TransposedConvLayer(name="t1", out_channels=1, kernel=3, stride=2, padding=3)

    def test_3d_layer_shapes(self):
        layer = TransposedConvLayer(
            name="t3d", out_channels=4, kernel=4, stride=2, padding=1, rank=3
        )
        out = layer.output_shape(FeatureMapShape.volume(8, 4, 4, 4))
        assert out.as_tuple() == (4, 8, 8, 8)

    def test_3d_inconsequential_higher_than_2d(self):
        layer2d = TransposedConvLayer(name="t2", out_channels=1, kernel=4, stride=2, padding=1)
        layer3d = TransposedConvLayer(
            name="t3", out_channels=1, kernel=4, stride=2, padding=1, rank=3
        )
        frac2d = layer2d.inconsequential_fraction(FeatureMapShape.image(1, 8, 8))
        frac3d = layer3d.inconsequential_fraction(FeatureMapShape.volume(1, 8, 8, 8))
        assert frac3d > frac2d

    def test_is_transposed_flag(self):
        layer = TransposedConvLayer(name="t1", out_channels=1, kernel=4, stride=2, padding=1)
        assert layer.is_transposed
        assert layer.is_convolutional


class TestOtherLayers:
    def test_dense_layer(self):
        layer = DenseLayer(name="fc", out_features=10)
        shape = FeatureMapShape.vector(100)
        assert layer.output_shape(shape).num_elements == 10
        assert layer.total_macs(shape) == 1000
        assert layer.weight_count(shape) == 1000

    def test_dense_rejects_zero_features(self):
        with pytest.raises(LayerError):
            DenseLayer(name="fc", out_features=0)

    def test_reshape_layer(self):
        target = FeatureMapShape.image(4, 2, 2)
        layer = ReshapeLayer(name="r", target=target)
        assert layer.output_shape(FeatureMapShape.vector(16)) == target
        assert layer.total_macs(FeatureMapShape.vector(16)) == 0

    def test_reshape_element_mismatch(self):
        layer = ReshapeLayer(name="r", target=FeatureMapShape.image(4, 2, 2))
        with pytest.raises(ShapeError):
            layer.output_shape(FeatureMapShape.vector(15))

    def test_pooling_layer(self):
        layer = PoolingLayer(name="p", kernel=2, stride=2)
        out = layer.output_shape(FeatureMapShape.image(8, 16, 16))
        assert out.as_tuple() == (8, 8, 8)
        assert layer.total_macs(FeatureMapShape.image(8, 16, 16)) == 0

    def test_pooling_rejects_bad_mode(self):
        with pytest.raises(LayerError):
            PoolingLayer(name="p", kernel=2, stride=2, mode="median")

    def test_activation_layer_identity_shape(self):
        layer = ActivationLayer(name="a", function="tanh")
        shape = FeatureMapShape.image(3, 8, 8)
        assert layer.output_shape(shape) == shape
        assert layer.weight_count(shape) == 0

    def test_activation_rejects_unknown_function(self):
        with pytest.raises(LayerError):
            ActivationLayer(name="a", function="swish")

    def test_batchnorm_layer(self):
        layer = BatchNormLayer(name="bn")
        shape = FeatureMapShape.image(16, 8, 8)
        assert layer.output_shape(shape) == shape
        assert layer.weight_count(shape) == 32
        assert layer.total_macs(shape) == shape.num_elements
