"""Failure-path hardening of the execution backends and the disk cache.

Covers the two bugfix satellites of the cache/backend sweep:

* A dying process pool (workers killed, OOM-killed, or the pool shut down
  mid-batch) must settle **every** in-flight :class:`JobFuture` with a
  terminal failure instead of stranding ``as_completed()`` consumers, and
  ``submit_jobs`` on a broken pool must return a full one-future-per-job
  list rather than raising mid-loop.
* ``DiskResultCache.get()`` must treat entries that vanish under a
  concurrent ``prune()``/delete as clean misses — including when the
  recency-refreshing ``os.utime`` is what hits the vanished file.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.runner import (
    DiskResultCache,
    JobFuture,
    ProcessPoolBackend,
    SimulationJob,
    execute_job,
)


@pytest.fixture
def jobs(dcgan_model, paper_config, options):
    return [
        SimulationJob(dcgan_model, accelerator, paper_config, options)
        for accelerator in ("eyeriss", "ganax")
    ]


def _wait_all_done(futures, timeout: float = 30.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(future.done() for future in futures):
            return True
        time.sleep(0.05)
    return False


def _kill_pool_workers(backend: ProcessPoolBackend) -> None:
    assert backend._pool is not None
    for pid in list(backend._pool._processes):
        os.kill(pid, signal.SIGKILL)


class TestJobFutureSettling:
    def test_raising_done_callback_still_settles(self, jobs):
        future = JobFuture()
        future.add_done_callback(lambda f: (_ for _ in ()).throw(RuntimeError()))
        result = execute_job(jobs[0])
        assert future.set_result(result)
        assert future.done()
        assert future.result(timeout=1) == result

    def test_baseexception_callback_cannot_strand_waiters(self, jobs):
        """An interrupt escaping a callback must not leave the future unsettled."""
        future = JobFuture()

        def interrupting(_):
            raise KeyboardInterrupt()

        future.add_done_callback(interrupting)
        with pytest.raises(KeyboardInterrupt):
            future.set_result(execute_job(jobs[0]))
        assert future.done()  # terminal despite the escaping callback
        assert future.result(timeout=1) is not None


class TestBrokenPool:
    def test_killed_workers_settle_every_inflight_future(self, jobs):
        """SIGKILLing the workers mid-batch terminates every future."""
        backend = ProcessPoolBackend(max_workers=2)
        try:
            # Prime the pool so worker processes exist, then race a batch
            # against their death.
            backend.submit_jobs(jobs[:1])[0].result(timeout=60)
            futures = backend.submit_jobs(jobs * 16)
            _kill_pool_workers(backend)
            assert _wait_all_done(futures), "pool death stranded futures"
            for future in futures:
                # Terminal either way: a result if the job landed before the
                # kill, a BrokenProcessPool-style failure otherwise.
                assert future.done()
                assert (future.peek_result() is not None) or (
                    future.exception() is not None
                )
        finally:
            backend.close()

    def test_submit_on_broken_pool_returns_failed_futures(self, jobs):
        """A broken pool fails the batch per-future instead of raising."""
        backend = ProcessPoolBackend(max_workers=2)
        try:
            backend.submit_jobs(jobs[:1])[0].result(timeout=60)
            first = backend.submit_jobs(jobs * 16)
            _kill_pool_workers(backend)
            assert _wait_all_done(first)
            # The executor has now observed the dead workers; submitting
            # again raises BrokenProcessPool inside submit_jobs, which must
            # surface as settled-failed futures, not an exception.
            second = backend.submit_jobs(jobs * 4)
            assert len(second) == len(jobs) * 4
            assert _wait_all_done(second, timeout=10)
            assert all(future.exception() is not None for future in second)
        finally:
            backend.close()

    def test_submit_on_closed_pool_returns_failed_futures(self, jobs):
        """shutdown() racing submit_jobs settles the batch as failed."""
        backend = ProcessPoolBackend(max_workers=1)
        backend.submit_jobs(jobs[:1])[0].result(timeout=60)
        pool = backend._pool
        assert pool is not None
        pool.shutdown(wait=True)
        futures = backend.submit_jobs(jobs)
        assert len(futures) == len(jobs)
        assert all(future.done() for future in futures)
        assert all(future.exception() is not None for future in futures)
        backend._pool = None  # the pool is already shut down


class TestDiskCacheRaces:
    def _entry(self, tmp_path, jobs):
        cache = DiskResultCache(tmp_path / "cache")
        job = jobs[0]
        result = execute_job(job)
        cache.put(job.cache_key, result)
        return job.cache_key, result

    def test_vanished_entry_is_a_clean_miss(self, tmp_path, jobs):
        key, _ = self._entry(tmp_path, jobs)
        cold = DiskResultCache(tmp_path / "cache")  # empty overlay
        path = cold._path_for(key)
        path.unlink()  # concurrent prune()/delete between lookup and open
        assert cold.get(key) is None

    def test_utime_racing_prune_still_serves_the_result(
        self, tmp_path, jobs, monkeypatch
    ):
        """Entry read OK but deleted before the recency touch: still a hit."""
        key, result = self._entry(tmp_path, jobs)
        cold = DiskResultCache(tmp_path / "cache")

        def vanished(path, *args, **kwargs):
            raise FileNotFoundError(path)

        monkeypatch.setattr(os, "utime", vanished)
        assert cold.get(key) == result

    def test_prune_to_zero_then_get_misses_without_error(self, tmp_path, jobs):
        key, _ = self._entry(tmp_path, jobs)
        cold = DiskResultCache(tmp_path / "cache")
        stats = cold.prune(max_bytes=0)
        assert stats.remaining_entries == 0
        assert cold.get(key) is None
