"""Tests for the experiment harness: every paper table/figure regenerates."""

from __future__ import annotations

import json

import pytest

from repro.accelerators import accelerator_names
from repro.errors import ExperimentError
from repro.runner import SimulationRunner
from repro.experiments import (
    ExperimentContext,
    experiment_ids,
    run_all,
    run_experiment,
)
from repro.experiments import figure1, figure8, figure9, figure10, figure11, table1, table2, table3
from repro.experiments.paper_data import MODEL_ORDER


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    """One shared context so the simulators run only once for this module."""
    return ExperimentContext()


class TestContextSession:
    def test_session_shares_runner_config_and_options(self):
        runner = SimulationRunner()
        context = ExperimentContext(runner=runner, accelerators=["eyeriss", "ideal"])
        session = context.session
        assert session is context.session  # built once
        assert session.runner is runner
        assert session.config is context.config
        assert session.options is context.options
        assert session.accelerators == ("eyeriss", "ideal")

    def test_session_defaults_to_the_paper_pair(self, context):
        assert context.session.accelerators == ("eyeriss", "ganax")
        assert context.session.baseline == "eyeriss"

    def test_multi_comparisons_cover_context_accelerators(self):
        runner = SimulationRunner()
        context = ExperimentContext(
            runner=runner, accelerators=accelerator_names()
        )
        multi = context.multi_comparisons
        assert context.multi_comparisons is multi  # computed once
        assert set(multi) == {m.name for m in context.models}
        for comparison in multi.values():
            assert comparison.accelerators == accelerator_names()
            assert comparison.baseline == "eyeriss"

    def test_multi_comparisons_agree_with_legacy_comparisons(self):
        context = ExperimentContext(runner=SimulationRunner())
        legacy = context.comparisons
        multi = context.multi_comparisons
        for name, comparison in legacy.items():
            assert multi[name].as_comparison() == comparison


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for required in ("figure1", "figure8", "figure9", "figure10", "figure11",
                         "table1", "table2", "table3", "ablation"):
            assert required in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError):
            run_experiment("figure99")

    def test_run_experiment_by_id(self, context):
        result = run_experiment("table2", context)
        assert result.experiment_id == "table2"
        assert result.report


class TestFigure1(object):
    def test_fractions_cover_all_models(self, context):
        result = figure1.run(context)
        fractions = result.data["inconsequential_fraction"]
        for model in MODEL_ORDER:
            assert model in fractions
        assert "Average" in fractions

    def test_average_above_60_percent(self, context):
        result = figure1.run(context)
        assert result.data["inconsequential_fraction"]["Average"] > 0.60

    def test_threedgan_highest_magan_lowest(self, context):
        fractions = figure1.run(context).data["inconsequential_fraction"]
        per_model = {k: v for k, v in fractions.items() if k in MODEL_ORDER}
        assert max(per_model, key=per_model.get) == "3D-GAN"
        assert min(per_model, key=per_model.get) == "MAGAN"


class TestFigure8:
    def test_speedup_series_structure(self, context):
        result = figure8.run(context)
        speedups = result.data["speedup"]
        assert set(MODEL_ORDER) <= set(speedups)
        assert "Geomean" in speedups

    def test_geomean_speedup_in_paper_ballpark(self, context):
        """Paper: 3.6x geomean.  The reproduction should land in 2x-6x."""
        speedups = figure8.run(context).data["speedup"]
        assert 2.0 <= speedups["Geomean"] <= 6.0

    def test_geomean_energy_reduction_in_paper_ballpark(self, context):
        """Paper: 3.1x average.  The reproduction should land in 1.5x-5x."""
        reductions = figure8.run(context).data["energy_reduction"]
        assert 1.5 <= reductions["Geomean"] <= 5.0

    def test_threedgan_fastest_magan_slowest(self, context):
        speedups = figure8.run(context).data["speedup"]
        per_model = {k: v for k, v in speedups.items() if k in MODEL_ORDER}
        assert max(per_model, key=per_model.get) == "3D-GAN"
        assert min(per_model, key=per_model.get) == "MAGAN"

    def test_every_model_benefits(self, context):
        result = figure8.run(context)
        for model in MODEL_ORDER:
            assert result.data["speedup"][model] > 1.0
            assert result.data["energy_reduction"][model] > 1.0

    def test_threedgan_speedup_exceeds_5x(self, context):
        """Paper: 6.1x for 3D-GAN; the reproduction should exceed 5x."""
        assert figure8.run(context).data["speedup"]["3D-GAN"] > 5.0


class TestFigure9:
    def test_breakdowns_normalised_to_eyeriss(self, context):
        result = figure9.run(context)
        for model in MODEL_ORDER:
            runtime = result.data["runtime"][model]
            assert sum(runtime["eyeriss"].values()) == pytest.approx(1.0)
            assert sum(runtime["ganax"].values()) < 1.0

    def test_discriminative_share_preserved(self, context):
        result = figure9.run(context)
        for model in MODEL_ORDER:
            runtime = result.data["runtime"][model]
            assert runtime["ganax"]["discriminative"] == pytest.approx(
                runtime["eyeriss"]["discriminative"], rel=1e-6
            )

    def test_average_bar_present(self, context):
        result = figure9.run(context)
        assert "Average" in result.data["runtime"]
        assert "Average" in result.data["energy"]


class TestFigure10:
    def test_components_and_normalisation(self, context):
        result = figure10.run(context)
        for model in MODEL_ORDER:
            breakdown = result.data["unit_energy"][model]
            assert set(breakdown["eyeriss"]) == {"pe", "rf", "noc", "gbuf", "dram"}
            assert sum(breakdown["eyeriss"].values()) == pytest.approx(1.0)

    def test_ganax_reduces_every_component(self, context):
        result = figure10.run(context)
        for model in MODEL_ORDER:
            breakdown = result.data["unit_energy"][model]
            for component, value in breakdown["eyeriss"].items():
                assert breakdown["ganax"][component] <= value * 1.001


class TestFigure11:
    def test_ganax_utilization_near_90_percent(self, context):
        """Paper: around 90% PE utilization for GANAX across all GANs."""
        result = figure11.run(context)
        for model in MODEL_ORDER:
            assert result.data["pe_utilization"]["ganax"][model] > 0.75

    def test_ganax_beats_eyeriss_everywhere(self, context):
        result = figure11.run(context)
        for model in MODEL_ORDER:
            assert (
                result.data["pe_utilization"]["ganax"][model]
                > result.data["pe_utilization"]["eyeriss"][model]
            )

    def test_eyeriss_utilization_tracks_zero_fraction(self, context):
        """EYERISS utilization is roughly the consequential fraction."""
        figure1_result = figure1.run(context)
        figure11_result = figure11.run(context)
        for model in MODEL_ORDER:
            consequential = 1.0 - figure1_result.data["inconsequential_fraction"][model]
            utilization = figure11_result.data["pe_utilization"]["eyeriss"][model]
            assert utilization <= consequential + 0.15


class TestTables:
    def test_table1_matches_paper_counts(self, context):
        result = table1.run(context)
        assert result.data["layer_counts"] == result.paper_reference["layer_counts"]

    def test_table2_matches_paper_energy(self, context):
        result = table2.run(context)
        measured = result.data["energy_table"]
        reference = result.paper_reference["energy_table"]
        for key, value in reference.items():
            assert measured[key]["pj_per_bit"] == pytest.approx(value["pj_per_bit"])

    def test_table3_overhead_near_paper(self, context):
        result = table3.run(context)
        assert 0.05 <= result.data["area_overhead_fraction"] <= 0.11
        assert result.data["ganax_total_area_um2"] == pytest.approx(
            result.paper_reference["ganax_total_area_um2"], rel=0.01
        )


class TestFullSuite:
    def test_run_all_produces_reports(self, context):
        results = run_all(context)
        assert len(results) == len(experiment_ids())
        for result in results:
            assert result.report.strip()
            assert result.data

    def test_results_are_json_serialisable(self, context):
        results = run_all(context)
        payload = {r.experiment_id: r.data for r in results}
        encoded = json.dumps(payload)
        assert json.loads(encoded) == payload
