"""Tests for the repro-experiments command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.accelerators import accelerator_names
from repro.cli import build_parser, main, parse_accelerator_list
from repro.errors import UnknownAcceleratorError
from repro.experiments import experiment_ids


class TestParser:
    def test_defaults_to_all(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.json is None

    def test_parses_experiment_and_json(self):
        args = build_parser().parse_args(["figure8", "--json", "out.json", "--quiet"])
        assert args.experiment == "figure8"
        assert args.json == "out.json"
        assert args.quiet


class TestMain:
    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(experiment_ids()) <= set(out)

    def test_single_experiment_report(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "DDR4" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["figure42"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table3", "--json", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        assert "table3" in payload
        assert "area_overhead_fraction" in payload["table3"]["data"]

    def test_quiet_suppresses_report(self, capsys):
        assert main(["table2", "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestAcceleratorOptions:
    def test_parse_accelerator_list_resolves_names(self):
        assert parse_accelerator_list(None) is None
        assert parse_accelerator_list(" EYERISS , ganax ") == ("eyeriss", "ganax")

    def test_parse_accelerator_list_unknown_name_message(self):
        with pytest.raises(UnknownAcceleratorError) as excinfo:
            parse_accelerator_list("eyeriss,tpu")
        message = str(excinfo.value)
        assert "unknown accelerator 'tpu'" in message
        for name in accelerator_names():
            assert name in message

    def test_list_accelerators_prints_registry(self, capsys):
        assert main(["list-accelerators"]) == 0
        out = capsys.readouterr().out
        for name in accelerator_names():
            assert name in out.split()

    def test_compare_reports_all_accelerators(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        for name in accelerator_names():
            assert name in out

    def test_compare_json_payload(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        assert (
            main(
                [
                    "compare",
                    "--accelerators",
                    "eyeriss,ideal",
                    "--json",
                    str(path),
                    "--quiet",
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())["compare"]
        assert payload["baseline"] == "eyeriss"
        assert payload["accelerators"] == ["eyeriss", "ideal"]
        assert payload["models"]["DCGAN"]["ideal"]["speedup"] > 1.0

    def test_compare_unknown_accelerator_is_clean_error(self, capsys):
        assert main(["compare", "--accelerators", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown accelerator 'tpu'" in err
        assert "registered accelerators" in err

    def test_compare_bad_baseline_is_clean_error(self, capsys):
        assert main(["compare", "--accelerators", "ganax,ideal", "--baseline", "eyeriss"]) == 2
        assert "error" in capsys.readouterr().err

    def test_accelerator_flags_rejected_outside_compare(self, capsys):
        assert main(["figure8", "--accelerators", "eyeriss,ideal"]) == 2
        assert "'compare'" in capsys.readouterr().err
        assert main(["all", "--baseline", "ganax"]) == 2
        assert "'compare'" in capsys.readouterr().err
