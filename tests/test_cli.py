"""Tests for the repro-experiments command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import experiment_ids


class TestParser:
    def test_defaults_to_all(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.json is None

    def test_parses_experiment_and_json(self):
        args = build_parser().parse_args(["figure8", "--json", "out.json", "--quiet"])
        assert args.experiment == "figure8"
        assert args.json == "out.json"
        assert args.quiet


class TestMain:
    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(experiment_ids()) <= set(out)

    def test_single_experiment_report(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "DDR4" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["figure42"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table3", "--json", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        assert "table3" in payload
        assert "area_overhead_fraction" in payload["table3"]["data"]

    def test_quiet_suppresses_report(self, capsys):
        assert main(["table2", "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == ""
