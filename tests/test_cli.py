"""Tests for the repro-experiments command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.accelerators import accelerator_names
from repro.cli import build_parser, main, parse_accelerator_list
from repro.errors import UnknownAcceleratorError
from repro.experiments import experiment_ids


class TestParser:
    def test_defaults_to_all(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.json is None

    def test_parses_experiment_and_json(self):
        args = build_parser().parse_args(["figure8", "--json", "out.json", "--quiet"])
        assert args.experiment == "figure8"
        assert args.json == "out.json"
        assert args.quiet


class TestMain:
    def test_list_prints_experiment_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(experiment_ids()) <= set(out)

    def test_single_experiment_report(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "DDR4" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["figure42"]) == 2
        assert "error" in capsys.readouterr().err

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["table3", "--json", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        assert "table3" in payload
        assert "area_overhead_fraction" in payload["table3"]["data"]

    def test_experiment_json_dash_is_pure_json(self, capsys):
        assert main(["table3", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "table3" in payload

    def test_quiet_suppresses_report(self, capsys):
        assert main(["table2", "--quiet"]) == 0
        assert capsys.readouterr().out.strip() == ""


class TestAcceleratorOptions:
    def test_parse_accelerator_list_resolves_names(self):
        assert parse_accelerator_list(None) is None
        assert parse_accelerator_list(" EYERISS , ganax ") == ("eyeriss", "ganax")

    def test_parse_accelerator_list_unknown_name_message(self):
        with pytest.raises(UnknownAcceleratorError) as excinfo:
            parse_accelerator_list("eyeriss,tpu")
        message = str(excinfo.value)
        assert "unknown accelerator 'tpu'" in message
        for name in accelerator_names():
            assert name in message

    def test_list_accelerators_prints_registry(self, capsys):
        assert main(["list-accelerators"]) == 0
        out = capsys.readouterr().out
        for name in accelerator_names():
            assert name in out.split()

    def test_compare_reports_all_accelerators(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        for name in accelerator_names():
            assert name in out

    def test_compare_json_payload(self, tmp_path, capsys):
        path = tmp_path / "compare.json"
        assert (
            main(
                [
                    "compare",
                    "--accelerators",
                    "eyeriss,ideal",
                    "--json",
                    str(path),
                    "--quiet",
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())["compare"]
        assert payload["baseline"] == "eyeriss"
        assert payload["accelerators"] == ["eyeriss", "ideal"]
        assert payload["models"]["DCGAN"]["ideal"]["speedup"] > 1.0

    def test_compare_json_dash_prints_to_stdout(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)  # a regression would create a file "-"
        assert main(["compare", "--accelerators", "eyeriss,ganax", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)["compare"]
        assert payload["baseline"] == "eyeriss"
        assert not (tmp_path / "-").exists()

    def test_compare_unknown_accelerator_is_clean_error(self, capsys):
        assert main(["compare", "--accelerators", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown accelerator 'tpu'" in err
        assert "registered accelerators" in err

    def test_compare_bad_baseline_is_clean_error(self, capsys):
        assert main(["compare", "--accelerators", "ganax,ideal", "--baseline", "eyeriss"]) == 2
        assert "error" in capsys.readouterr().err

    def test_accelerator_flags_rejected_outside_compare(self, capsys):
        assert main(["figure8", "--accelerators", "eyeriss,ideal"]) == 2
        assert "'compare'" in capsys.readouterr().err
        assert main(["all", "--baseline", "ganax"]) == 2
        assert "'compare'" in capsys.readouterr().err


class TestListAcceleratorsJson:
    def test_json_payload_is_machine_readable(self, tmp_path, capsys):
        path = tmp_path / "accelerators.json"
        assert main(["list-accelerators", "--json", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        entries = {entry["name"]: entry for entry in payload["accelerators"]}
        assert set(entries) == set(accelerator_names())
        for entry in entries.values():
            assert entry["version"]
            assert isinstance(entry["config_space"], list)
        assert "num_pvs" in entries["ganax"]["config_space"]
        assert "dram_bandwidth_bytes_per_cycle" not in entries["ideal"]["config_space"]

    def test_json_dash_prints_to_stdout(self, capsys):
        assert main(["list-accelerators", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["accelerators"]


class TestDseCli:
    def test_dse_json_reports_frontier(self, tmp_path, capsys):
        path = tmp_path / "dse.json"
        assert (
            main(
                [
                    "dse",
                    "--fields",
                    "num_pvs",
                    "--json",
                    str(path),
                    "--quiet",
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())["dse"]
        assert payload["accelerator"] == "ganax"
        assert payload["baseline"] == "eyeriss"
        assert payload["strategy"] == "exhaustive"
        assert payload["frontier"]
        assert payload["evaluations"] == len(payload["frontier"]) + len(
            payload["dominated"]
        )

    def test_dse_random_strategy_respects_budget(self, tmp_path, capsys):
        path = tmp_path / "dse.json"
        assert (
            main(
                [
                    "dse",
                    "--fields",
                    "num_pvs,pes_per_pv",
                    "--strategy",
                    "random",
                    "--budget",
                    "2",
                    "--seed",
                    "5",
                    "--json",
                    str(path),
                    "--quiet",
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())["dse"]
        assert payload["strategy"] == "random"
        assert payload["evaluations"] == 2

    def test_dse_json_dash_is_pure_json(self, capsys):
        assert main(["dse", "--fields", "num_pvs", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)["dse"]
        assert payload["frontier"]

    def test_json_dash_with_cache_stats_keeps_stdout_pure(self, capsys):
        assert main(["dse", "--fields", "num_pvs", "--json", "-", "--cache-stats"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)["dse"]
        assert payload["frontier"]
        assert "cache:" in captured.err  # accounting rerouted to stderr

    def test_dse_unknown_strategy_is_clean_error(self, capsys):
        assert main(["dse", "--strategy", "bayesian"]) == 2
        assert "unknown search strategy" in capsys.readouterr().err

    def test_dse_unknown_field_is_clean_error(self, capsys):
        assert main(["dse", "--fields", "warp_speed"]) == 2
        assert "error" in capsys.readouterr().err

    def test_dse_flags_rejected_elsewhere(self, capsys):
        assert main(["figure8", "--strategy", "random"]) == 2
        assert "'dse'" in capsys.readouterr().err
        assert main(["all", "--budget", "4"]) == 2
        assert "'dse'" in capsys.readouterr().err
        assert main(["figure8", "--seed", "7"]) == 2
        assert "'dse'" in capsys.readouterr().err


class TestCachePruneCli:
    def test_requires_cache_dir_and_max_bytes(self, capsys):
        assert main(["cache-prune", "--max-bytes", "10"]) == 2
        assert "--cache-dir" in capsys.readouterr().err
        assert main(["cache-prune", "--cache-dir", "/tmp/x-cache-prune"]) == 2
        assert "--max-bytes" in capsys.readouterr().err

    def test_prunes_populated_cache(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        # warm the cache with a tiny dse run, then prune it to zero
        assert (
            main(
                [
                    "dse",
                    "--fields",
                    "num_pvs",
                    "--cache-dir",
                    str(cache_dir),
                    "--quiet",
                ]
            )
            == 0
        )
        assert any(cache_dir.glob("*/*.pkl"))
        assert (
            main(
                ["cache-prune", "--cache-dir", str(cache_dir), "--max-bytes", "0"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "pruned" in out
        assert not any(cache_dir.glob("*/*.pkl"))

    def test_json_dash_is_pure_json(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        assert (
            main(
                [
                    "cache-prune",
                    "--cache-dir",
                    str(cache_dir),
                    "--max-bytes",
                    "0",
                    "--json",
                    "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)["cache_prune"]
        assert payload["removed_entries"] == 0

    def test_max_bytes_rejected_elsewhere(self, capsys):
        assert main(["compare", "--max-bytes", "10"]) == 2
        assert "'cache-prune'" in capsys.readouterr().err


class TestWorkloadOptions:
    def test_parse_workload_list_resolves_specs(self):
        from repro.cli import parse_workload_list

        assert parse_workload_list(None) is None
        assert parse_workload_list(" DCGAN , dcgan@size=32 ") == (
            "DCGAN",
            "dcgan@32x32",
        )

    def test_parse_workload_list_unknown_name_message(self):
        from repro.cli import parse_workload_list
        from repro.errors import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError) as excinfo:
            parse_workload_list("DCGAN,StyleGAN")
        message = str(excinfo.value)
        assert "unknown workload 'StyleGAN'" in message
        assert "DCGAN" in message and "synthetic" in message

    def test_list_workloads_prints_registry_and_families(self, capsys):
        from repro.workloads import workload_names

        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in workload_names():
            assert name in out
        assert "synthetic@" in out and "families" in out

    def test_list_workloads_json_is_machine_readable(self, capsys):
        from repro.workloads import workload_families, workload_names

        assert main(["list-workloads", "--json", "-"]) == 0
        payload = json.loads(capsys.readouterr().out)
        names = [entry["name"] for entry in payload["workloads"]]
        assert names == list(workload_names())
        families = {entry["name"]: entry for entry in payload["families"]}
        assert set(families) == set(workload_families())
        assert families["synthetic"]["grammar"].startswith("synthetic@")
        assert families["synthetic"]["default_variants"]

    def test_compare_with_workload_specs(self, capsys):
        assert (
            main(
                [
                    "compare",
                    "--workloads",
                    "dcgan@64x64,synthetic@d4c64",
                    "--accelerators",
                    "eyeriss,ganax",
                    "--json",
                    "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)["compare"]
        assert set(payload["models"]) == {"DCGAN", "synthetic@d4c64"}
        assert payload["models"]["synthetic@d4c64"]["ganax"]["speedup"] > 1.0

    def test_compare_unknown_workload_is_clean_error(self, capsys):
        assert main(["compare", "--workloads", "stylegan"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'stylegan'" in err

    def test_compare_with_only_the_baseline_stays_table_only(self, capsys):
        """A baseline-only comparison has no chart bars but must still work."""
        assert main(["compare", "--accelerators", "eyeriss"]) == 0
        out = capsys.readouterr().out
        assert "DCGAN" in out
        assert "Generator speedup" not in out  # chart skipped, not crashed

    def test_workloads_flag_rejected_elsewhere(self, capsys):
        assert main(["figure8", "--workloads", "DCGAN"]) == 2
        err = capsys.readouterr().err
        assert "'compare'" in err and "'sweep'" in err and "'dse'" in err


class TestSweepCli:
    def test_sweep_json_payload(self, capsys):
        assert (
            main(
                [
                    "sweep",
                    "--parameter",
                    "num_pvs",
                    "--values",
                    "8,16",
                    "--workloads",
                    "synthetic@d4c64",
                    "--accelerators",
                    "eyeriss,ganax",
                    "--json",
                    "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)["sweep"]
        assert payload["parameter"] == "num_pvs"
        assert payload["values"] == [8, 16]
        assert set(payload["points"]) == {"num_pvs=8", "num_pvs=16"}
        point = payload["points"]["num_pvs=8"]["synthetic@d4c64"]
        assert point["ganax"]["speedup"] > 1.0

    def test_sweep_requires_parameter_and_values(self, capsys):
        assert main(["sweep", "--values", "8"]) == 2
        assert "--parameter" in capsys.readouterr().err
        assert main(["sweep", "--parameter", "num_pvs"]) == 2
        assert "--values" in capsys.readouterr().err

    def test_sweep_unknown_field_is_clean_error(self, capsys):
        assert main(["sweep", "--parameter", "warp_speed", "--values", "1"]) == 2
        assert "error" in capsys.readouterr().err

    def test_sweep_flags_rejected_elsewhere(self, capsys):
        assert main(["figure8", "--parameter", "num_pvs"]) == 2
        assert "'sweep'" in capsys.readouterr().err
        assert main(["compare", "--values", "8"]) == 2
        assert "'sweep'" in capsys.readouterr().err


class TestDseWorkloads:
    def test_dse_over_a_synthetic_workload(self, capsys):
        assert (
            main(
                [
                    "dse",
                    "--fields",
                    "num_pvs",
                    "--workloads",
                    "synthetic@d4c64",
                    "--json",
                    "-",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)["dse"]
        assert payload["frontier"]


class TestStreamingFlags:
    """The streaming CLI surface: --progress, --jsonl and --backend."""

    COMPARE = [
        "compare",
        "--workloads",
        "dcgan@64x64",
        "--accelerators",
        "eyeriss,ganax",
    ]

    def test_jsonl_dash_streams_one_record_per_job(self, capsys):
        assert main([*self.COMPARE, "--jsonl", "-"]) == 0
        lines = [
            line for line in capsys.readouterr().out.splitlines() if line.strip()
        ]
        assert len(lines) == 2  # one record per (model x accelerator) job
        records = [json.loads(line) for line in lines]
        assert {record["accelerator"] for record in records} == {"eyeriss", "ganax"}
        for record in records:
            assert record["event"] in ("completed", "cache-hit")
            assert record["model"] == "DCGAN"
            assert record["provenance"] in ("executed", "cache", "deduplicated")
            assert record["generator_cycles"] > 0
            assert record["total_energy_pj"] > 0

    def test_jsonl_file_on_sweep_covers_the_grid(self, tmp_path, capsys):
        path = tmp_path / "sweep.jsonl"
        assert (
            main(
                [
                    "sweep",
                    "--parameter",
                    "num_pvs",
                    "--values",
                    "8,16",
                    "--workloads",
                    "dcgan@64x64",
                    "--accelerators",
                    "eyeriss,ganax",
                    "--jsonl",
                    str(path),
                    "--quiet",
                ]
            )
            == 0
        )
        records = [
            json.loads(line) for line in path.read_text().splitlines() if line
        ]
        assert len(records) == 4  # 2 values x 2 accelerators x 1 model
        assert all(record["model"] == "DCGAN" for record in records)

    def test_jsonl_rejected_outside_streaming_modes(self, capsys):
        assert main(["figure8", "--jsonl", "-"]) == 2
        err = capsys.readouterr().err
        assert "--jsonl" in err and "'compare'" in err

    def test_progress_reports_each_job_on_stderr(self, capsys):
        assert main([*self.COMPARE, "--progress", "--quiet"]) == 0
        err = capsys.readouterr().err
        assert "[1/2]" in err and "[2/2]" in err
        assert "DCGAN on ganax" in err

    def test_backend_flag_resolves_through_the_registry(self, capsys):
        assert main([*self.COMPARE, "--backend", "asyncio", "--quiet"]) == 0
        assert main([*self.COMPARE, "--backend", "serial", "--quiet"]) == 0

    def test_unknown_backend_is_a_clean_error(self, capsys):
        assert main([*self.COMPARE, "--backend", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown execution backend" in err

    def test_json_dash_and_jsonl_dash_cannot_share_stdout(self, capsys):
        assert main([*self.COMPARE, "--json", "-", "--jsonl", "-"]) == 2
        assert "claim stdout" in capsys.readouterr().err
        # either stream alone, or one of them to a file, stays fine
        assert main([*self.COMPARE, "--jsonl", "-", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert all(json.loads(line) for line in out.splitlines() if line.strip())

    def test_jsonl_records_carry_the_schema_version(self, capsys):
        """Wire compatibility: every --jsonl record is explicitly versioned."""
        from repro.runner import RECORD_SCHEMA_VERSION

        assert main([*self.COMPARE, "--jsonl", "-", "--quiet"]) == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
            if line.strip()
        ]
        assert records
        assert all(
            record["schema_version"] == RECORD_SCHEMA_VERSION
            for record in records
        )


class TestServiceVerbs:
    """The service CLI surface: 'serve' / 'remote-compare' and their flags."""

    def test_service_flags_rejected_outside_service_modes(self, capsys):
        for flags in (
            ["--host", "127.0.0.1"],
            ["--port", "8642"],
            ["--client-id", "w1"],
        ):
            assert main(["compare", *flags]) == 2
            err = capsys.readouterr().err
            assert flags[0] in err
        for flags in (
            ["--port-file", "p"],
            ["--quota", "4"],
            ["--queue-limit", "8"],
            ["--max-active", "2"],
            ["--journal", "j.jsonl"],
            ["--resume"],
        ):
            assert main(["remote-compare", *flags]) == 2
            err = capsys.readouterr().err
            assert flags[0] in err and "'serve'" in err

    def test_remote_compare_against_a_live_server(self, tmp_path, capsys):
        from repro.service import SimulationServer

        with SimulationServer(port=0) as server:
            assert (
                main(
                    [
                        "remote-compare",
                        "--port",
                        str(server.port),
                        "--workloads",
                        "dcgan@64x64",
                        "--accelerators",
                        "eyeriss,ganax",
                        "--jsonl",
                        "-",
                        "--quiet",
                    ]
                )
                == 0
            )
            records = [
                json.loads(line)
                for line in capsys.readouterr().out.splitlines()
                if line.strip()
            ]
            assert len(records) == 2
            assert {r["accelerator"] for r in records} == {"eyeriss", "ganax"}
            assert all(r["type"] == "event" for r in records)
            # a second invocation resolves entirely from the server's cache
            assert (
                main(
                    [
                        "remote-compare",
                        "--port",
                        str(server.port),
                        "--workloads",
                        "dcgan@64x64",
                        "--accelerators",
                        "eyeriss,ganax",
                        "--quiet",
                    ]
                )
                == 0
            )
            stats = server.runner.stats
        assert stats.misses == 2
        assert stats.hits == 2

    def test_remote_compare_unreachable_server_is_a_clean_error(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["remote-compare", "--port", str(port)]) == 2
        assert "could not connect" in capsys.readouterr().err


class TestTelemetryFlags:
    """The observability CLI surface: --trace, --metrics and the stats verb."""

    COMPARE = [
        "compare",
        "--workloads",
        "dcgan@64x64",
        "--accelerators",
        "eyeriss,ganax",
    ]

    def test_trace_writes_chrome_trace_event_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main([*self.COMPARE, "--trace", str(path), "--quiet"]) == 0
        payload = json.loads(path.read_text())
        names = [event["name"] for event in payload["traceEvents"]]
        assert names.count("batch") == 1
        assert names.count("job") == 2
        for event in payload["traceEvents"]:
            assert event["ph"] == "X"
            assert event["dur"] >= 0

    def test_trace_jsonl_extension_selects_span_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert main([*self.COMPARE, "--trace", str(path), "--quiet"]) == 0
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert {record["name"] for record in records} >= {"batch", "job"}

    def test_metrics_dash_writes_the_snapshot_to_stdout(self, capsys):
        assert main([*self.COMPARE, "--metrics", "-"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["counters"]["runner.jobs.scheduled"] == 2
        assert snapshot["counters"]["backend.jobs.dispatched{backend=serial}"] == 2
        assert snapshot["histograms"]["runner.job.latency_seconds"]["count"] == 2

    def test_metrics_file_and_cache_stats_agree(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        assert main([*self.COMPARE, "--metrics", str(path), "--cache-stats"]) == 0
        snapshot = json.loads(path.read_text())
        out = capsys.readouterr().out
        misses = snapshot["counters"]["runner.cache.misses"]
        assert f"cache: 0 hits, {misses} misses" in out

    def test_trace_and_metrics_rejected_outside_streaming_modes(self, capsys):
        assert main(["figure8", "--trace", "t.json"]) == 2
        assert "--trace" in capsys.readouterr().err
        assert main(["all", "--metrics", "-"]) == 2
        assert "--metrics" in capsys.readouterr().err

    def test_metrics_dash_cannot_share_stdout_with_json_dash(self, capsys):
        assert main([*self.COMPARE, "--json", "-", "--metrics", "-"]) == 2
        assert "claim stdout" in capsys.readouterr().err

    def test_stats_verb_queries_a_running_service(self, capsys):
        from repro.service import Client, SimulationServer, grid_specs

        with SimulationServer(port=0) as server:
            with Client(port=server.port) as client:
                list(client.submit(grid_specs(["DCGAN"], ["eyeriss", "ganax"])))
            assert main(["stats", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "2 jobs done" in out
        assert "cache:" in out

    def test_stats_verb_unreachable_server_is_a_clean_error(self, capsys):
        import socket

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["stats", "--port", str(port)]) == 2
        assert "error:" in capsys.readouterr().err
