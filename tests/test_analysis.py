"""Unit tests for metrics, breakdowns, report rendering and sweeps."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import (
    average_breakdown,
    check_components,
    stacked_rows,
    total_of,
)
from repro.analysis.metrics import (
    arithmetic_mean,
    fraction_summary,
    geometric_mean,
    normalize,
    percent,
    ratio_summary,
    reduction,
    speedup,
    utilization,
)
from repro.analysis.report import (
    bullet_list,
    format_fraction_series,
    format_key_values,
    format_ratio_series,
    format_stacked_breakdown,
    format_table,
)
from repro.analysis.sweep import ParameterSweep, compare_model, compare_models
from repro.config import ArchitectureConfig
from repro.errors import AnalysisError
from repro.workloads import get_workload


class TestMetrics:
    def test_speedup(self):
        assert speedup(100, 25) == 4.0

    def test_speedup_rejects_zero_improved(self):
        with pytest.raises(AnalysisError):
            speedup(100, 0)

    def test_reduction(self):
        assert reduction(300, 100) == 3.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([5.0]) == pytest.approx(5.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(AnalysisError):
            geometric_mean([])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0

    def test_normalize(self):
        assert normalize({"a": 2.0, "b": 4.0}, 4.0) == {"a": 0.5, "b": 1.0}
        with pytest.raises(AnalysisError):
            normalize({"a": 1.0}, 0.0)

    def test_utilization_clamps(self):
        assert utilization(5, 10) == 0.5
        assert utilization(20, 10) == 1.0
        assert utilization(1, 0) == 0.0

    def test_percent_rendering(self):
        assert percent(0.785) == "78.5%"

    def test_ratio_summary_adds_geomean(self):
        summary = ratio_summary({"A": 2.0, "B": 8.0})
        assert summary["Geomean"] == pytest.approx(4.0)
        assert set(summary) == {"A", "B", "Geomean"}

    def test_fraction_summary_adds_average(self):
        summary = fraction_summary({"A": 0.2, "B": 0.4})
        assert summary["Average"] == pytest.approx(0.3)


class TestBreakdownHelpers:
    def test_average_breakdown(self):
        per_model = {
            "A": {"eyeriss": {"x": 1.0, "y": 0.0}, "ganax": {"x": 0.5, "y": 0.0}},
            "B": {"eyeriss": {"x": 0.0, "y": 1.0}, "ganax": {"x": 0.0, "y": 0.25}},
        }
        average = average_breakdown(per_model)
        assert average["eyeriss"]["x"] == pytest.approx(0.5)
        assert average["ganax"]["y"] == pytest.approx(0.125)

    def test_average_breakdown_empty_rejected(self):
        with pytest.raises(AnalysisError):
            average_breakdown({})

    def test_total_of(self):
        assert total_of({"a": 0.2, "b": 0.3}) == pytest.approx(0.5)

    def test_check_components(self):
        check_components({"pe": 0.1, "dram": 0.2})
        with pytest.raises(AnalysisError):
            check_components({"pe": 0.1, "magic": 0.2})

    def test_stacked_rows_requires_segments(self):
        per_model = {"A": {"eyeriss": {"generative": 0.6}}}
        with pytest.raises(AnalysisError):
            stacked_rows(per_model, segments=("generative", "discriminative"))
        rows = stacked_rows(per_model, segments=("generative",))
        assert rows["A"]["eyeriss"] == {"generative": 0.6}


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["Name", "Value"], [["a", 1.5], ["bb", 2.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[2] and "Value" in lines[2]
        assert len(lines) == 6

    def test_format_table_wrong_arity_rejected(self):
        with pytest.raises(AnalysisError):
            format_table(["A"], [["x", "y"]])

    def test_format_table_bool_rendering(self):
        text = format_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text

    def test_format_ratio_series_includes_reference(self):
        text = format_ratio_series("S", {"A": 2.0}, reference={"A": 3.0})
        assert "2.00" in text and "3.00" in text and "Paper" in text

    def test_format_fraction_series_percentages(self):
        text = format_fraction_series("F", {"A": 0.25})
        assert "25.0" in text

    def test_format_stacked_breakdown(self):
        per_model = {
            "A": {
                "eyeriss": {"generative": 0.7, "discriminative": 0.3},
                "ganax": {"generative": 0.2, "discriminative": 0.3},
            }
        }
        text = format_stacked_breakdown("B", per_model, ("discriminative", "generative"))
        assert "eyeriss" in text and "ganax" in text
        assert "0.300" in text and "0.700" in text

    def test_format_key_values(self):
        text = format_key_values("KV", {"speed": "3.6x"})
        assert "speed" in text and "3.6x" in text

    def test_bullet_list(self):
        assert bullet_list(["a", "b"]).count("-") == 2


class TestSweep:
    @pytest.fixture(scope="class")
    def model(self):
        return get_workload("DCGAN")

    def test_compare_model_names(self, model):
        comparison = compare_model(model)
        assert comparison.model_name == "DCGAN"
        assert comparison.eyeriss.accelerator == "eyeriss"
        assert comparison.ganax.accelerator == "ganax"

    def test_compare_models_keys(self, model):
        comparisons = compare_models([model])
        assert set(comparisons) == {"DCGAN"}

    def test_compare_models_empty_rejected(self):
        with pytest.raises(AnalysisError):
            compare_models([])

    def test_parameter_sweep_points(self, model):
        sweep = ParameterSweep([model])
        points = sweep.run("ganax_target_utilization", [0.5, 0.92])
        assert len(points) == 2
        assert points[0].geomean_speedup < points[1].geomean_speedup
        assert all("DCGAN" in p.speedups for p in points)

    def test_parameter_sweep_labelled_configs(self, model):
        sweep = ParameterSweep([model])
        points = sweep.run_configs({
            "paper": ArchitectureConfig.paper_default(),
        })
        assert points[0].label == "paper"
        assert points[0].geomean_energy_reduction > 1.0

    def test_sweep_requires_values(self, model):
        sweep = ParameterSweep([model])
        with pytest.raises(AnalysisError):
            sweep.run("num_pvs", [])

    def test_sweep_requires_models(self):
        with pytest.raises(AnalysisError):
            ParameterSweep([])
