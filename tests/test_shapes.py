"""Unit tests for feature-map shapes and convolution shape arithmetic."""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.nn.shapes import (
    FeatureMapShape,
    conv_output_extent,
    transposed_conv_output_extent,
    validate_same_rank,
    zero_inserted_extent,
)


class TestFeatureMapShape:
    def test_image_constructor(self):
        shape = FeatureMapShape.image(3, 64, 32)
        assert shape.channels == 3
        assert shape.spatial == (64, 32)
        assert shape.rank == 2
        assert shape.height == 64
        assert shape.width == 32

    def test_volume_constructor(self):
        shape = FeatureMapShape.volume(16, 4, 8, 12)
        assert shape.rank == 3
        assert shape.spatial == (4, 8, 12)
        assert shape.width == 12
        assert shape.height == 8

    def test_vector_constructor(self):
        shape = FeatureMapShape.vector(100)
        assert shape.channels == 100
        assert shape.spatial == (1,)
        assert shape.num_elements == 100

    def test_num_elements(self):
        shape = FeatureMapShape.image(3, 64, 64)
        assert shape.spatial_size == 64 * 64
        assert shape.num_elements == 3 * 64 * 64

    def test_size_bytes_16bit(self):
        shape = FeatureMapShape.image(1, 4, 4)
        assert shape.size_bytes(16) == 32

    def test_size_bytes_8bit(self):
        shape = FeatureMapShape.image(1, 4, 4)
        assert shape.size_bytes(8) == 16

    def test_size_bytes_rejects_nonpositive(self):
        with pytest.raises(ShapeError):
            FeatureMapShape.image(1, 4, 4).size_bytes(0)

    def test_as_tuple(self):
        assert FeatureMapShape.image(2, 3, 4).as_tuple() == (2, 3, 4)

    def test_rejects_zero_channels(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(channels=0, spatial=(4, 4))

    def test_rejects_negative_spatial(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(channels=1, spatial=(4, -1))

    def test_rejects_empty_spatial(self):
        with pytest.raises(ShapeError):
            FeatureMapShape(channels=1, spatial=())

    def test_height_of_vector_raises(self):
        with pytest.raises(ShapeError):
            _ = FeatureMapShape.vector(10).height


class TestConvExtents:
    def test_basic_conv_extent(self):
        # 64 input, kernel 4, stride 2, padding 1 -> 32
        assert conv_output_extent(64, 4, 2, 1) == 32

    def test_unit_stride_same_padding(self):
        assert conv_output_extent(16, 3, 1, 1) == 16

    def test_conv_extent_no_padding(self):
        assert conv_output_extent(7, 3, 1, 0) == 5

    def test_conv_extent_kernel_too_large(self):
        with pytest.raises(ShapeError):
            conv_output_extent(2, 5, 1, 0)

    def test_conv_extent_invalid_stride(self):
        with pytest.raises(ShapeError):
            conv_output_extent(8, 3, 0, 0)

    def test_tconv_extent_doubles_resolution(self):
        # The DCGAN geometry: kernel 4, stride 2, padding 1 doubles the size.
        assert transposed_conv_output_extent(8, 4, 2, 1) == 16

    def test_tconv_extent_paper_example(self):
        # 4x4 input, 5x5 kernel, stride 2, padding 2 -> 7x7 output.
        assert transposed_conv_output_extent(4, 5, 2, 2) == 7

    def test_tconv_extent_output_padding(self):
        assert transposed_conv_output_extent(4, 5, 2, 2, output_padding=1) == 8

    def test_tconv_extent_stride_one_kernel3(self):
        assert transposed_conv_output_extent(16, 3, 1, 1) == 16

    def test_tconv_extent_rejects_negative_padding(self):
        with pytest.raises(ShapeError):
            transposed_conv_output_extent(4, 5, 2, -1)

    def test_tconv_inverts_conv(self):
        # Transposed conv with the same geometry maps the conv output size
        # back to the conv input size (for exact geometries).
        in_extent = 32
        out = conv_output_extent(in_extent, 4, 2, 1)
        assert transposed_conv_output_extent(out, 4, 2, 1) == in_extent

    def test_zero_inserted_extent(self):
        assert zero_inserted_extent(4, 2) == 7
        assert zero_inserted_extent(4, 1) == 4
        assert zero_inserted_extent(1, 3) == 1

    def test_zero_inserted_extent_invalid(self):
        with pytest.raises(ShapeError):
            zero_inserted_extent(0, 2)


class TestValidateSameRank:
    def test_uniform_rank(self):
        shapes = [FeatureMapShape.image(1, 4, 4), FeatureMapShape.image(3, 8, 8)]
        assert validate_same_rank(shapes) == 2

    def test_mixed_rank_raises(self):
        shapes = [FeatureMapShape.image(1, 4, 4), FeatureMapShape.volume(1, 2, 2, 2)]
        with pytest.raises(ShapeError):
            validate_same_rank(shapes)

    def test_empty_raises(self):
        with pytest.raises(ShapeError):
            validate_same_rank([])
