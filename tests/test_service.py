"""Tests for the simulation service: protocol, journal, admission, server.

The load-bearing guarantees of the service subsystem:

* **wire protocol** — versioned JSONL records round-trip exactly; records
  from a different ``schema_version`` are rejected with a message naming
  both versions, never silently misparsed;
* **cross-client dedup** — clients submitting overlapping work share one
  runner and one content-addressed cache, so the second client's duplicate
  jobs resolve as cache/dedup events (zero re-simulations), including when
  the submissions are *concurrent* (in-flight key gating);
* **admission control** — per-client quota and the server-wide bound refuse
  batches with explicit ``rejected`` records (all-or-nothing), and the
  round-robin dispatcher keeps a saturating client from starving others;
* **durability** — terminal events journal to fsync'd JSONL; a server
  restarted with ``resume`` replays the journal into its cache so a crashed
  sweep re-runs only the jobs the crash lost, tolerating a torn final line;
* **lifecycle** — graceful shutdown drains in-flight batches and notifies
  connected clients.
"""

from __future__ import annotations

import json
import pickle
import socket
import threading

import pytest

from repro.errors import AdmissionError, ProtocolError, ServiceError
from repro.runner import (
    RECORD_SCHEMA_VERSION,
    DiskResultCache,
    InMemoryResultCache,
    SimulationRunner,
    get_backend,
)
from repro.service import (
    AdmissionController,
    Client,
    EventJournal,
    JobSpec,
    RoundRobinQueue,
    SCHEMA_VERSION,
    SimulationServer,
    grid_specs,
)
from repro.service import protocol
from repro.service.journal import decode_result, journal_record

SIX_GANS = ("3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN")


def small_grid():
    return grid_specs(["DCGAN"], ["eyeriss", "ganax"])


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_schema_version_matches_runner_records(self):
        assert SCHEMA_VERSION == RECORD_SCHEMA_VERSION

    def test_encode_decode_roundtrip(self):
        record = protocol.hello_record("worker-1")
        assert protocol.decode(protocol.encode(record)) == record
        assert record["schema_version"] == SCHEMA_VERSION

    def test_decode_rejects_malformed_lines(self):
        with pytest.raises(ProtocolError):
            protocol.decode(b"{not json\n")
        with pytest.raises(ProtocolError):
            protocol.decode(b"[1, 2, 3]\n")

    def test_check_schema_names_both_versions(self):
        with pytest.raises(ProtocolError) as excinfo:
            protocol.check_schema({"schema_version": 999}, source="peer record")
        message = str(excinfo.value)
        assert "999" in message
        assert str(SCHEMA_VERSION) in message
        assert "peer record" in message
        with pytest.raises(ProtocolError):
            protocol.check_schema({})  # absent version is a mismatch too

    def test_every_builder_stamps_the_schema_version(self):
        records = [
            protocol.hello_record("c"),
            protocol.submit_record(small_grid()),
            protocol.bye_record(),
            protocol.welcome_record(4, 8),
            protocol.accepted_record("r", 2),
            protocol.rejected_record("quota", "because"),
            protocol.done_record("r", {"completed": 2}),
            protocol.goodbye_record(),
            protocol.shutdown_record(),
            protocol.error_record("oops"),
        ]
        assert all(r["schema_version"] == SCHEMA_VERSION for r in records)

    def test_job_spec_roundtrip_and_build(self):
        spec = JobSpec(
            workload="dcgan@32x32",
            accelerator="ganax",
            config={"num_pvs": 8},
            options={"include_discriminator": False},
        )
        parsed = protocol.job_spec_from_wire(spec.describe())
        assert parsed == spec
        job = parsed.build()
        assert job.accelerator == "ganax"
        assert job.config.num_pvs == 8
        assert job.options.include_discriminator is False

    def test_job_spec_build_surfaces_bad_overrides(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            JobSpec(workload="DCGAN", accelerator="ganax",
                    config={"definitely_not_a_field": 1}).build()
        with pytest.raises(ReproError):
            JobSpec(workload="no-such-gan", accelerator="ganax").build()

    def test_job_spec_from_wire_validation(self):
        with pytest.raises(ProtocolError):
            protocol.job_spec_from_wire({"workload": "DCGAN"})  # no accelerator
        with pytest.raises(ProtocolError):
            protocol.job_spec_from_wire(
                {"workload": "DCGAN", "accelerator": "ganax", "extra": 1}
            )
        with pytest.raises(ProtocolError):
            protocol.job_spec_from_wire(
                {"workload": "DCGAN", "accelerator": "ganax", "config": [1]}
            )

    def test_parse_submit_validation(self):
        with pytest.raises(ProtocolError):
            protocol.parse_submit({"type": "submit", "jobs": []})
        with pytest.raises(ProtocolError):
            protocol.parse_submit({"type": "submit", "request_id": "r"})
        request_id, specs = protocol.parse_submit(
            protocol.submit_record(small_grid(), request_id="req-7")
        )
        assert request_id == "req-7"
        assert specs == small_grid()

    def test_grid_specs_is_the_full_cross_product(self):
        specs = grid_specs(SIX_GANS, ["eyeriss", "ganax"])
        assert len(specs) == 12
        assert len({(s.workload, s.accelerator) for s in specs}) == 12


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_quota_is_all_or_nothing(self):
        controller = AdmissionController(quota=4, queue_limit=100)
        assert controller.try_admit("a", 3) is None
        code, reason = controller.try_admit("a", 2)  # 3 + 2 > 4
        assert code == "quota"
        assert "quota" in reason
        assert controller.inflight("a") == 3  # refusal committed nothing
        assert controller.try_admit("a", 1) is None  # exactly at the bound
        controller.release("a", 4)
        assert controller.inflight("a") == 0

    def test_queue_limit_spans_clients(self):
        controller = AdmissionController(quota=10, queue_limit=12)
        assert controller.try_admit("a", 8) is None
        code, _reason = controller.try_admit("b", 8)
        assert code == "queue-full"
        assert controller.try_admit("b", 4) is None
        assert controller.inflight() == 12

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionController(quota=0)
        with pytest.raises(ServiceError):
            AdmissionController(queue_limit=-1)
        with pytest.raises(ServiceError):
            AdmissionController().try_admit("a", 0)

    def test_round_robin_interleaves_clients(self):
        queue = RoundRobinQueue()
        for i in range(3):
            queue.push("hog", f"hog-{i}")
        queue.push("light", "light-0")
        order = [queue.pop() for _ in range(len(queue))]
        # the light client's single item dispatches after at most one item
        # from each other client, not after the hog's whole backlog
        assert order == [
            ("hog", "hog-0"),
            ("light", "light-0"),
            ("hog", "hog-1"),
            ("hog", "hog-2"),
        ]
        with pytest.raises(IndexError):
            queue.pop()

    def test_round_robin_rotation_survives_refills(self):
        queue = RoundRobinQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        assert queue.pop() == ("a", 1)
        queue.push("a", 3)  # refilling does not jump the line
        assert queue.pop() == ("b", 2)
        assert queue.pop() == ("a", 3)


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def _terminal_event_records(runner_jobs, request_id="req"):
    """Run jobs on a throwaway runner, capturing journal-form records."""
    records = []
    with SimulationRunner() as runner:
        handle = runner.submit(
            runner_jobs,
            on_event=lambda e: records.append(journal_record(e, request_id))
            if e.is_terminal
            else None,
        )
        for _ in handle.as_completed(raise_on_error=False):
            pass
    return records


class TestJournal:
    @pytest.fixture(scope="class")
    def sample_records(self):
        jobs = [spec.build() for spec in small_grid()]
        return _terminal_event_records(jobs)

    def test_append_and_read_roundtrip(self, tmp_path, sample_records):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for record in sample_records:
                journal.append(record)
        assert EventJournal.read_records(path) == sample_records

    def test_journal_records_decode_their_results(self, sample_records):
        for record in sample_records:
            result = decode_result(record)
            assert result is not None
            assert result.total_cycles > 0

    def test_torn_final_line_is_skipped(self, tmp_path, sample_records):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            journal.append(sample_records[0])
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "torn": tru')  # crash mid-append
        assert EventJournal.read_records(path) == [sample_records[0]]

    def test_torn_middle_line_raises(self, tmp_path, sample_records):
        path = tmp_path / "journal.jsonl"
        with path.open("w", encoding="utf-8") as handle:
            handle.write('{"oops": tru\n')
            handle.write(json.dumps(sample_records[0]) + "\n")
        with pytest.raises(ProtocolError):
            EventJournal.read_records(path)

    def test_mismatched_schema_version_rejected_with_message(
        self, tmp_path, sample_records
    ):
        path = tmp_path / "journal.jsonl"
        stale = dict(sample_records[0], schema_version=SCHEMA_VERSION + 1)
        path.write_text(json.dumps(stale) + "\n", encoding="utf-8")
        with pytest.raises(ProtocolError) as excinfo:
            EventJournal.read_records(path)
        assert str(SCHEMA_VERSION + 1) in str(excinfo.value)

    def test_compaction_keeps_newest_record_per_key(
        self, tmp_path, sample_records
    ):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for _ in range(3):  # the same sweep journaled three times over
                for record in sample_records:
                    journal.append(record)
            # terminal non-result records never shortcut a resume
            journal.append(
                dict(sample_records[0], event="failed", result_pickle=None)
            )
            survivors = journal.compact()
        assert survivors == len(sample_records)
        kept = EventJournal.read_records(path)
        assert {r["cache_key"] for r in kept} == {
            r["cache_key"] for r in sample_records
        }
        assert all("result_pickle" in r for r in kept)

    def test_rotation_compacts_past_the_byte_budget(
        self, tmp_path, sample_records
    ):
        path = tmp_path / "journal.jsonl"
        line_bytes = len(json.dumps(sample_records[0])) + 1
        with EventJournal(path, rotate_bytes=6 * line_bytes) as journal:
            for _ in range(20):
                for record in sample_records:
                    journal.append(record)
            # auto-compaction kept the journal bounded: never more than the
            # rotation budget plus the append that tripped it
            assert path.stat().st_size <= 7 * line_bytes
            assert journal.compact() == len(sample_records)
        kept = EventJournal.read_records(path)
        assert {r["cache_key"] for r in kept} == {
            r["cache_key"] for r in sample_records
        }

    def test_replay_into_restores_the_cache(self, tmp_path, sample_records):
        path = tmp_path / "journal.jsonl"
        with EventJournal(path) as journal:
            for record in sample_records:
                journal.append(record)
        cache = InMemoryResultCache()
        restored = EventJournal.replay_into(path, cache)
        assert restored == len(sample_records)
        for record in sample_records:
            assert cache.get(record["cache_key"]) == decode_result(record)

    def test_corrupt_result_payload_is_skipped_not_fatal(
        self, tmp_path, sample_records
    ):
        path = tmp_path / "journal.jsonl"
        corrupt = dict(sample_records[0], result_pickle="!!!not-base64-pickle")
        path.write_text(json.dumps(corrupt) + "\n", encoding="utf-8")
        cache = InMemoryResultCache()
        assert EventJournal.replay_into(path, cache) == 0
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Server integration
# ----------------------------------------------------------------------
def _raw_connection(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    return sock, sock.makefile("rwb")


class TestServer:
    def test_second_client_resolves_entirely_from_cache(self):
        """The acceptance criterion: six-GAN grid, two sequential clients."""
        specs = grid_specs(SIX_GANS, ["eyeriss", "ganax"])
        with SimulationServer(port=0) as server:
            with Client(port=server.port, client_id="first") as first:
                first_events = [r["event"] for r in first.submit(specs)]
            with Client(port=server.port, client_id="second") as second:
                second_events = [r["event"] for r in second.submit(specs)]
            stats = server.runner.stats
        assert len(first_events) == len(specs)
        assert len(second_events) == len(specs)
        # the second client re-simulated nothing: all cache/dedup events
        assert all(event == "cache-hit" for event in second_events)
        assert stats.misses == len(specs)  # each distinct job ran exactly once
        assert stats.hits == len(specs)

    def test_concurrent_identical_submissions_dedup_across_clients(self):
        """In-flight key gating: simultaneous duplicates never both execute."""
        specs = grid_specs(["DCGAN", "MAGAN"], ["eyeriss", "ganax"])
        counts = {}
        with SimulationServer(port=0) as server:
            def worker(name):
                with Client(port=server.port, client_id=name) as client:
                    list(client.submit(specs))
                    counts[name] = client.last_counts

            threads = [
                threading.Thread(target=worker, args=(f"w{i}",))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = server.runner.stats
        assert stats.misses == len(specs)  # 4 distinct jobs, 4 executions
        assert stats.hits == len(specs)  # the duplicates were all hits
        total_completed = sum(c["completed"] for c in counts.values())
        total_hits = sum(c["cache-hit"] for c in counts.values())
        assert total_completed == len(specs)
        assert total_hits == len(specs)

    def test_event_records_reuse_the_jsonl_grammar(self):
        with SimulationServer(port=0) as server:
            with Client(port=server.port) as client:
                records = client.run(small_grid())
        for record in records:
            assert record["schema_version"] == SCHEMA_VERSION
            assert record["type"] == "event"
            assert record["event"] in ("completed", "cache-hit")
            # the --jsonl result fields ride along unchanged
            assert record["generator_cycles"] > 0
            assert record["total_energy_pj"] > 0
            assert len(record["cache_key"]) == 64

    def test_quota_exceeded_is_rejected_with_the_wire_code(self):
        with SimulationServer(port=0, quota=1) as server:
            with Client(port=server.port) as client:
                with pytest.raises(AdmissionError) as excinfo:
                    client.run(small_grid())  # 2 jobs > quota of 1
                assert excinfo.value.code == "quota"
                # the refusal committed nothing: a conforming batch still runs
                records = client.run(small_grid()[:1])
                assert len(records) == 1

    def test_queue_limit_rejection(self):
        with SimulationServer(port=0, quota=8, queue_limit=3) as server:
            with Client(port=server.port) as client:
                with pytest.raises(AdmissionError) as excinfo:
                    client.run(grid_specs(SIX_GANS[:2], ["eyeriss", "ganax"]))
                assert excinfo.value.code == "queue-full"

    def test_bad_requests_rejected_not_fatal(self):
        with SimulationServer(port=0) as server:
            with Client(port=server.port) as client:
                with pytest.raises(AdmissionError) as excinfo:
                    client.run([JobSpec(workload="no-such-gan",
                                        accelerator="ganax")])
                assert excinfo.value.code == "bad-request"
                with pytest.raises(AdmissionError):
                    client.run([JobSpec(workload="DCGAN",
                                        accelerator="no-such-accel")])
                # the connection survives rejected submits
                assert len(client.run(small_grid()[:1])) == 1

    def test_stale_schema_handshake_rejected_with_message(self):
        with SimulationServer(port=0) as server:
            sock, handle = _raw_connection(server.port)
            try:
                stale = protocol.hello_record("old-client")
                stale["schema_version"] = 999
                handle.write(protocol.encode(stale))
                handle.flush()
                record = protocol.decode(handle.readline())
                assert record["type"] == "rejected"
                assert record["code"] == "schema-mismatch"
                assert "999" in record["reason"]
                assert handle.readline() == b""  # server closed the connection
            finally:
                sock.close()

    def test_non_hello_first_record_rejected(self):
        with SimulationServer(port=0) as server:
            sock, handle = _raw_connection(server.port)
            try:
                handle.write(protocol.encode(protocol.bye_record()))
                handle.flush()
                record = protocol.decode(handle.readline())
                assert record["type"] == "rejected"
                assert record["code"] == "bad-request"
            finally:
                sock.close()

    def test_unknown_request_type_answers_error_record(self):
        with SimulationServer(port=0) as server:
            sock, handle = _raw_connection(server.port)
            try:
                handle.write(protocol.encode(protocol.hello_record("raw")))
                handle.flush()
                assert protocol.decode(handle.readline())["type"] == "welcome"
                handle.write(protocol.encode(protocol.stamp({"type": "frobnicate"})))
                handle.flush()
                record = protocol.decode(handle.readline())
                assert record["type"] == "error"
                assert "frobnicate" in record["reason"]
            finally:
                sock.close()

    def test_round_robin_fairness_under_a_saturating_client(self):
        """A hog pipelining many batches cannot starve a light client."""
        started = []
        runner = SimulationRunner(backend=get_backend("asyncio", max_workers=1))
        runner.subscribe(
            lambda e: started.append(e.job.model_name)
            if e.kind == "started"
            else None
        )
        hog_specs = [
            JobSpec(workload=name, accelerator=accel)
            for name in ("DCGAN", "MAGAN", "ArtGAN")
            for accel in ("eyeriss", "ganax")
        ]
        try:
            with SimulationServer(
                port=0, runner=runner, max_active_requests=1
            ) as server:
                # the hog pipelines one-job batches over a raw connection
                # (the sync Client is deliberately one-request-at-a-time)
                sock, handle = _raw_connection(server.port)
                try:
                    handle.write(protocol.encode(protocol.hello_record("hog")))
                    handle.flush()
                    assert protocol.decode(handle.readline())["type"] == "welcome"
                    for index, spec in enumerate(hog_specs):
                        handle.write(
                            protocol.encode(
                                protocol.submit_record([spec], f"hog-{index}")
                            )
                        )
                    handle.flush()
                    with Client(port=server.port, client_id="light") as light:
                        light_records = light.run(
                            [JobSpec(workload="DiscoGAN", accelerator="eyeriss")]
                        )
                    assert len(light_records) == 1
                    # drain the hog's stream until every batch is done
                    done = 0
                    while done < len(hog_specs):
                        record = protocol.decode(handle.readline())
                        if record["type"] == "done":
                            done += 1
                finally:
                    sock.close()
        finally:
            runner.close()
        # round-robin dispatch: the light client's single job started before
        # the hog's backlog finished, not after it
        assert "DiscoGAN" in started
        light_position = started.index("DiscoGAN")
        assert light_position < len(started) - 1, (
            f"light client starved behind the hog's backlog: {started}"
        )

    def test_crashed_sweep_resumes_only_missing_jobs(self, tmp_path):
        """Kill mid-sweep, restart with resume: finished jobs never re-run."""
        journal = tmp_path / "journal.jsonl"
        full_grid = grid_specs(SIX_GANS[:3], ["eyeriss", "ganax"])
        partial = full_grid[:4]  # the crash happened after 4 of 6 jobs

        with SimulationServer(port=0, journal_path=journal) as server:
            with Client(port=server.port) as client:
                client.run(partial)
        # simulate the crash: torn half-record at the journal's tail
        with journal.open("a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "event": "comp')

        # a fresh server (cold cache) resumes from the journal
        runner = SimulationRunner(cache=DiskResultCache(tmp_path / "cache"))
        try:
            with SimulationServer(
                port=0, runner=runner, journal_path=journal, resume=True
            ) as server:
                assert server.restored_entries == len(partial)
                with Client(port=server.port) as client:
                    records = client.run(full_grid)
            by_event = {}
            for record in records:
                by_event.setdefault(record["event"], []).append(record)
            # only the 2 jobs the crash lost re-ran; the rest hit the cache
            assert len(by_event.get("completed", [])) == len(full_grid) - len(partial)
            assert len(by_event.get("cache-hit", [])) == len(partial)
            assert runner.stats.misses == len(full_grid) - len(partial)
        finally:
            runner.close()

    def test_resume_requires_a_cache(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        journal.write_text("", encoding="utf-8")
        runner = SimulationRunner(use_cache=False)
        try:
            with pytest.raises(ServiceError):
                SimulationServer(
                    port=0, runner=runner, journal_path=journal, resume=True
                )
        finally:
            runner.close()

    def test_graceful_shutdown_drains_inflight_batches(self):
        """stop() during execution: the batch completes, then shutdown."""
        server = SimulationServer(port=0)
        server.start_in_thread()
        admitted = threading.Event()
        server.runner.subscribe(
            lambda e: admitted.set() if e.kind == "scheduled" else None
        )
        records = []
        failures = []

        def submit():
            try:
                with Client(port=server.port) as client:
                    records.extend(client.submit(small_grid()))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        thread = threading.Thread(target=submit)
        thread.start()
        # shut down the moment the batch reaches the runner — it is still
        # executing, and the drain guarantee must let it finish
        assert admitted.wait(timeout=30)
        server.shutdown()
        thread.join()
        assert not failures
        assert len(records) == len(small_grid())

    def test_submits_during_drain_are_rejected_shutting_down(self):
        with SimulationServer(port=0, quota=4) as server:
            client = Client(port=server.port)
            client.connect()
            server._stopping = True  # the drain window, frozen open
            try:
                with pytest.raises(AdmissionError) as excinfo:
                    client.run(small_grid()[:1])
                assert excinfo.value.code == "shutting-down"
            finally:
                server._stopping = False
                client.close()

    def test_connect_retries_with_backoff_until_the_server_binds(self):
        # grab a port that nothing listens on yet
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        server = SimulationServer(port=port)
        binder = threading.Timer(0.3, server.start_in_thread)
        binder.start()
        try:
            client = Client(port=port, connect_retries=8, backoff_seconds=0.1)
            with client:
                records = client.run(small_grid()[:1])
            assert len(records) == 1
        finally:
            binder.join()
            server.shutdown()

    def test_connect_gives_up_with_a_clear_error(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = Client(port=port, connect_retries=1, backoff_seconds=0.01)
        with pytest.raises(ServiceError) as excinfo:
            client.connect()
        assert "2 attempts" in str(excinfo.value)


# ----------------------------------------------------------------------
# Schema compatibility shim (v1 -> v2)
# ----------------------------------------------------------------------
class TestSchemaCompatShim:
    def test_current_and_previous_versions_are_accepted(self):
        for version in range(protocol.MIN_COMPATIBLE_SCHEMA_VERSION, SCHEMA_VERSION + 1):
            protocol.check_schema({"schema_version": version})  # no raise

    def test_v1_records_still_interoperate(self):
        """The v2 grammar is additive, so a v1 peer's records pass the gate."""
        record = protocol.hello_record("old-worker")
        record["schema_version"] = 1
        protocol.check_schema(record, source="client hello")  # no raise

    def test_out_of_range_versions_are_rejected(self):
        for version in (0, SCHEMA_VERSION + 1, -3):
            with pytest.raises(ProtocolError) as excinfo:
                protocol.check_schema({"schema_version": version})
            message = str(excinfo.value)
            assert str(protocol.MIN_COMPATIBLE_SCHEMA_VERSION) in message
            assert str(SCHEMA_VERSION) in message

    def test_non_integer_versions_are_rejected(self):
        for version in ("2", 2.0, True, None):
            with pytest.raises(ProtocolError):
                protocol.check_schema({"schema_version": version})

    def test_stats_records_are_stamped(self):
        assert protocol.stats_request_record()["schema_version"] == SCHEMA_VERSION
        record = protocol.stats_record({"jobs_done": 3})
        assert record["schema_version"] == SCHEMA_VERSION
        assert record["type"] == "stats"
        assert record["jobs_done"] == 3


# ----------------------------------------------------------------------
# The stats exchange and operational chatter
# ----------------------------------------------------------------------
class TestServerTelemetry:
    @pytest.fixture(autouse=True)
    def fresh_metrics(self):
        # the registry is process-global; start each test's accounting at zero
        from repro.telemetry import configure_metrics

        configure_metrics()
        yield
        configure_metrics()

    def test_stats_request_answers_live_counters(self):
        with SimulationServer(port=0) as server:
            with Client(port=server.port, client_id="stats-worker") as client:
                list(client.submit(small_grid()))
                payload = client.stats()
        assert payload["server"]
        assert payload["uptime_seconds"] >= 0
        assert payload["jobs_done"] == len(small_grid())
        assert payload["requests_done"] == 1
        assert payload["queue_depth"] == 0
        assert payload["cache"]["misses"] >= 0
        metrics = payload["metrics"]
        accepted = metrics["counters"].get(
            "service.admission.accepted{client=stats-worker}"
        )
        assert accepted == 1
        assert metrics["histograms"]["service.request_latency_seconds"]["count"] == 1

    def test_stats_before_any_work_is_all_zero(self):
        with SimulationServer(port=0) as server:
            with Client(port=server.port) as client:
                payload = client.stats()
        assert payload["jobs_done"] == 0
        assert payload["requests_done"] == 0
        assert payload["active_requests"] == 0

    def test_startup_banner_goes_to_stderr(self, capfd):
        with SimulationServer(port=0) as server:
            port = server.port
        err = capfd.readouterr().err
        assert "repro-service: listening on" in err
        assert str(port) in err
        assert f"schema v{SCHEMA_VERSION}" in err

    def test_heartbeat_line_reports_progress(self, capfd):
        import time as _time

        with SimulationServer(port=0, heartbeat_seconds=0.05) as server:
            with Client(port=server.port) as client:
                list(client.submit(small_grid()[:1]))
            _time.sleep(0.2)
        err = capfd.readouterr().err
        assert "repro-service: heartbeat" in err
        assert "jobs_done=1" in err

    def test_heartbeat_can_be_disabled(self, capfd):
        import time as _time

        with SimulationServer(port=0, heartbeat_seconds=0.0):
            _time.sleep(0.15)
        err = capfd.readouterr().err
        assert "repro-service: listening on" in err  # banner stays
        assert "heartbeat" not in err
