"""Integration tests: cycle-level execution vs the NumPy functional reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compiler import GanaxLayerExecutor
from repro.errors import CompilationError
from repro.nn.functional import conv2d, transposed_conv2d


class TestGanaxDataflowCorrectness:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,pes",
        [
            (4, 5, 2, 2, 4),   # the paper's running example
            (4, 4, 2, 1, 4),   # DCGAN-style geometry
            (5, 3, 1, 1, 4),   # stride-1 (no zero insertion)
            (3, 6, 3, 2, 4),   # stride-3
            (6, 4, 2, 1, 4),   # larger map
        ],
    )
    def test_matches_numpy_reference(self, rng, size, kernel, stride, padding, pes):
        x = rng.standard_normal((size, size))
        w = rng.standard_normal((kernel, kernel))
        reference = transposed_conv2d(x[None], w[None, None], stride=stride, padding=padding)[0]
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=pes, skip_zeros=True)
        result = executor.run_transposed_conv(x, w, stride=stride, padding=padding)
        assert result.output.shape == reference.shape
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_non_square_input(self, rng):
        x = rng.standard_normal((3, 5))
        w = rng.standard_normal((4, 4))
        reference = transposed_conv2d(x[None], w[None, None], stride=2, padding=1)[0]
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4, skip_zeros=True)
        result = executor.run_transposed_conv(x, w, stride=2, padding=1)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_more_pvs_than_rows(self, rng):
        x = rng.standard_normal((2, 2))
        w = rng.standard_normal((4, 4))
        reference = transposed_conv2d(x[None], w[None, None], stride=2, padding=1)[0]
        executor = GanaxLayerExecutor(num_pvs=8, pes_per_pv=4, skip_zeros=True)
        result = executor.run_transposed_conv(x, w, stride=2, padding=1)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_rejects_insufficient_pes(self, rng):
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((5, 5))
        # Even-phase rows need 3 active PEs; a 2-PE PV cannot host them.
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=2, skip_zeros=True)
        with pytest.raises(CompilationError):
            executor.run_transposed_conv(x, w, stride=2, padding=2)

    def test_rejects_multichannel_input(self, rng):
        executor = GanaxLayerExecutor()
        with pytest.raises(CompilationError):
            executor.run_transposed_conv(
                rng.standard_normal((2, 4, 4)), rng.standard_normal((3, 3)), 2, 1
            )


class TestConventionalDataflowCorrectness:
    def test_dense_tconv_matches_reference(self, rng):
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((5, 5))
        reference = transposed_conv2d(x[None], w[None, None], stride=2, padding=2)[0]
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=5, skip_zeros=False)
        result = executor.run_transposed_conv(x, w, stride=2, padding=2)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)
        assert not result.skip_zeros

    def test_conv_matches_reference(self, rng):
        x = rng.standard_normal((6, 6))
        w = rng.standard_normal((3, 3))
        reference = conv2d(x[None], w[None, None], stride=1, padding=1)[0]
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=3)
        result = executor.run_conv(x, w, stride=1, padding=1)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)

    def test_strided_conv_matches_reference(self, rng):
        x = rng.standard_normal((8, 8))
        w = rng.standard_normal((4, 4))
        reference = conv2d(x[None], w[None, None], stride=2, padding=1)[0]
        executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4)
        result = executor.run_conv(x, w, stride=2, padding=1)
        np.testing.assert_allclose(result.output, reference, atol=1e-9)


class TestZeroSkippingBenefit:
    def test_ganax_executes_fewer_pe_uops_than_dense(self, rng):
        """The headline microarchitectural claim at PE level: skipping the
        inserted zeros removes a large share of the multiply-adds."""
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((5, 5))
        ganax = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4, skip_zeros=True)
        dense = GanaxLayerExecutor(num_pvs=2, pes_per_pv=5, skip_zeros=False)
        ganax_run = ganax.run_transposed_conv(x, w, stride=2, padding=2)
        dense_run = dense.run_transposed_conv(x, w, stride=2, padding=2)
        assert ganax_run.executed_pe_uops < dense_run.executed_pe_uops
        assert ganax_run.counters_mac_ratio(dense_run) < 0.7 if hasattr(ganax_run, "counters_mac_ratio") else True

    def test_stride1_has_no_skipping_advantage(self, rng):
        """With stride 1 nothing is inserted, so both dataflows do similar work."""
        x = rng.standard_normal((5, 5))
        w = rng.standard_normal((3, 3))
        ganax = GanaxLayerExecutor(num_pvs=2, pes_per_pv=3, skip_zeros=True)
        dense = GanaxLayerExecutor(num_pvs=2, pes_per_pv=3, skip_zeros=False)
        ganax_run = ganax.run_transposed_conv(x, w, stride=1, padding=1)
        dense_run = dense.run_transposed_conv(x, w, stride=1, padding=1)
        ratio = dense_run.executed_pe_uops / ganax_run.executed_pe_uops
        assert 0.8 <= ratio <= 1.3

    def test_wave_count_scales_with_rows(self, rng):
        x = rng.standard_normal((4, 4))
        w = rng.standard_normal((4, 4))
        two_pvs = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4, skip_zeros=True)
        four_pvs = GanaxLayerExecutor(num_pvs=4, pes_per_pv=4, skip_zeros=True)
        assert (
            two_pvs.run_transposed_conv(x, w, 2, 1).waves
            > four_pvs.run_transposed_conv(x, w, 2, 1).waves
        )
