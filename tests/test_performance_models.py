"""Unit tests for the EYERISS and GANAX analytical performance models."""

from __future__ import annotations

import pytest

from repro.baseline.performance import estimate_layer as eyeriss_estimate, gbuf_input_tiles
from repro.baseline.row_stationary import map_layer, mapping_utilization, spatial_rows_cols
from repro.config import ArchitectureConfig
from repro.core.performance import estimate_layer as ganax_estimate
from repro.errors import DataflowError
from repro.nn.layers import ActivationLayer, ConvLayer, DenseLayer, TransposedConvLayer
from repro.nn.network import LayerBinding
from repro.nn.shapes import FeatureMapShape


def _bind(layer, input_shape):
    return LayerBinding(
        index=0,
        layer=layer,
        input_shape=input_shape,
        output_shape=layer.output_shape(input_shape),
    )


class TestRowStationaryMapping:
    def test_mapping_fits_small_layer(self, conv_binding, paper_config):
        mapping = map_layer(conv_binding, paper_config)
        assert mapping.filter_rows == 4
        assert 0.0 < mapping.occupancy <= 1.0
        assert mapping.sets_per_pass >= 1

    def test_mapping_occupancy_bounds(self, dcgan_like_tconv_binding, paper_config):
        assert 0.0 < mapping_utilization(dcgan_like_tconv_binding, paper_config) <= 1.0

    def test_spatial_rows_cols_2d(self, conv_binding):
        rows, cols, out_rows, out_cols = spatial_rows_cols(conv_binding)
        assert (rows, cols) == (4, 4)
        assert (out_rows, out_cols) == (8, 8)

    def test_spatial_rows_cols_3d_folds_depth(self):
        layer = ConvLayer(name="c3", out_channels=2, kernel=3, stride=1, padding=1, rank=3)
        binding = _bind(layer, FeatureMapShape.volume(1, 4, 6, 8))
        rows, cols, out_rows, out_cols = spatial_rows_cols(binding)
        assert rows == 3
        assert out_rows == 4 * 6
        assert out_cols == 8

    def test_non_convolutional_rejected(self, paper_config):
        layer = ActivationLayer(name="a", function="relu")
        binding = LayerBinding(
            index=0, layer=layer,
            input_shape=FeatureMapShape.image(1, 4, 4),
            output_shape=FeatureMapShape.image(1, 4, 4),
        )
        with pytest.raises(DataflowError):
            map_layer(binding, paper_config)

    def test_large_output_folds(self, paper_config):
        layer = ConvLayer(name="big", out_channels=4, kernel=3, stride=1, padding=1)
        binding = _bind(layer, FeatureMapShape.image(4, 128, 128))
        mapping = map_layer(binding, paper_config)
        assert mapping.folds > 1


class TestGbufTiling:
    def test_small_working_set_single_tile(self, paper_config):
        assert gbuf_input_tiles(1000, paper_config) == 1

    def test_large_working_set_multiple_tiles(self, paper_config):
        gbuf_words = paper_config.global_data_buffer_bytes // paper_config.data_bytes
        assert gbuf_input_tiles(gbuf_words * 2, paper_config) >= 4

    def test_monotone_in_working_set(self, paper_config):
        tiles = [gbuf_input_tiles(n, paper_config) for n in (10, 10_000, 100_000, 1_000_000)]
        assert tiles == sorted(tiles)


class TestEyerissEstimates:
    def test_conv_layer_cycles_close_to_dense_bound(self, conv_binding, paper_config):
        estimate = eyeriss_estimate(conv_binding, paper_config)
        dense_bound = conv_binding.total_macs / paper_config.num_pes
        assert estimate.cycles >= dense_bound
        assert estimate.compute_cycles >= dense_bound

    def test_tconv_layer_spends_cycles_on_zeros(self, dcgan_like_tconv_binding, paper_config):
        estimate = eyeriss_estimate(dcgan_like_tconv_binding, paper_config)
        assert estimate.counters.gated_ops > 0
        assert estimate.counters.mac_ops == dcgan_like_tconv_binding.consequential_macs
        assert (
            estimate.counters.mac_ops + estimate.counters.gated_ops
            == dcgan_like_tconv_binding.total_macs
        )

    def test_tconv_streams_expanded_input(self, dcgan_like_tconv_binding, paper_config):
        estimate = eyeriss_estimate(dcgan_like_tconv_binding, paper_config)
        genuine = dcgan_like_tconv_binding.input_shape.num_elements
        # DRAM reads include the zero-inserted input, which is larger than the
        # genuine input, plus the weights.
        assert estimate.counters.dram_reads > genuine + dcgan_like_tconv_binding.weight_count

    def test_conv_layer_has_no_gated_ops(self, conv_binding, paper_config):
        estimate = eyeriss_estimate(conv_binding, paper_config)
        assert estimate.counters.gated_ops == 0

    def test_dense_layer_streaming_estimate(self, paper_config):
        layer = DenseLayer(name="fc", out_features=64)
        binding = _bind(layer, FeatureMapShape.vector(128))
        estimate = eyeriss_estimate(binding, paper_config)
        assert estimate.cycles > 0
        assert estimate.counters.mac_ops == 128 * 64

    def test_activation_layer_estimate(self, paper_config):
        layer = ActivationLayer(name="act", function="relu")
        binding = LayerBinding(
            index=0, layer=layer,
            input_shape=FeatureMapShape.image(4, 8, 8),
            output_shape=FeatureMapShape.image(4, 8, 8),
        )
        estimate = eyeriss_estimate(binding, paper_config)
        assert estimate.cycles >= 1
        assert estimate.counters.mac_ops == 0

    def test_total_pe_cycles_consistency(self, conv_binding, paper_config):
        estimate = eyeriss_estimate(conv_binding, paper_config)
        assert estimate.total_pe_cycles == estimate.cycles * paper_config.num_pes
        assert estimate.active_pe_cycles <= estimate.total_pe_cycles


class TestGanaxEstimates:
    def test_conv_layers_match_baseline(self, conv_binding, paper_config):
        """GANAX runs conventional convolutions at exactly baseline cost."""
        baseline = eyeriss_estimate(conv_binding, paper_config)
        ganax = ganax_estimate(conv_binding, paper_config)
        assert ganax.cycles == baseline.cycles
        assert ganax.counters.as_dict() == baseline.counters.as_dict()
        assert ganax.mode == "simd"

    def test_tconv_layers_skip_zeros(self, dcgan_like_tconv_binding, paper_config):
        baseline = eyeriss_estimate(dcgan_like_tconv_binding, paper_config)
        ganax = ganax_estimate(dcgan_like_tconv_binding, paper_config)
        assert ganax.mode == "mimd-simd"
        assert ganax.cycles < baseline.cycles
        assert ganax.counters.gated_ops == 0
        assert ganax.counters.mac_ops == dcgan_like_tconv_binding.consequential_macs

    def test_tconv_dram_traffic_smaller_than_baseline(self, dcgan_like_tconv_binding, paper_config):
        baseline = eyeriss_estimate(dcgan_like_tconv_binding, paper_config)
        ganax = ganax_estimate(dcgan_like_tconv_binding, paper_config)
        assert ganax.counters.dram_accesses < baseline.counters.dram_accesses

    def test_speedup_close_to_zero_fraction_bound(self, paper_config):
        """For a large stride-2 layer, the speedup approaches the dense/
        consequential MAC ratio (roughly 4x), reduced by overheads."""
        layer = TransposedConvLayer(name="t", out_channels=32, kernel=4, stride=2, padding=1)
        binding = _bind(layer, FeatureMapShape.image(64, 16, 16))
        baseline = eyeriss_estimate(binding, paper_config)
        ganax = ganax_estimate(binding, paper_config)
        speedup = baseline.cycles / ganax.cycles
        ratio = binding.total_macs / binding.consequential_macs
        assert 0.5 * ratio <= speedup <= 1.3 * ratio

    def test_stride1_tconv_no_large_speedup(self, paper_config):
        layer = TransposedConvLayer(name="t", out_channels=16, kernel=3, stride=1, padding=1)
        binding = _bind(layer, FeatureMapShape.image(16, 32, 32))
        baseline = eyeriss_estimate(binding, paper_config)
        ganax = ganax_estimate(binding, paper_config)
        assert baseline.cycles / ganax.cycles < 1.8

    def test_3d_tconv_higher_speedup_than_2d(self, paper_config):
        layer2d = TransposedConvLayer(name="t2", out_channels=8, kernel=4, stride=2, padding=1)
        layer3d = TransposedConvLayer(
            name="t3", out_channels=8, kernel=4, stride=2, padding=1, rank=3
        )
        b2d = _bind(layer2d, FeatureMapShape.image(16, 8, 8))
        b3d = _bind(layer3d, FeatureMapShape.volume(16, 8, 8, 8))
        speedup_2d = eyeriss_estimate(b2d, paper_config).cycles / ganax_estimate(b2d, paper_config).cycles
        speedup_3d = eyeriss_estimate(b3d, paper_config).cycles / ganax_estimate(b3d, paper_config).cycles
        assert speedup_3d > speedup_2d

    def test_dispatch_overhead_scales_with_config(self, dcgan_like_tconv_binding, paper_config):
        cheap = ganax_estimate(dcgan_like_tconv_binding, paper_config)
        expensive = ganax_estimate(
            dcgan_like_tconv_binding,
            paper_config.with_updates(mimd_dispatch_overhead_cycles=64),
        )
        assert expensive.dispatch_cycles > cheap.dispatch_cycles

    def test_utilization_cap_slows_ganax(self, dcgan_like_tconv_binding, paper_config):
        fast = ganax_estimate(dcgan_like_tconv_binding, paper_config)
        slow = ganax_estimate(
            dcgan_like_tconv_binding,
            paper_config.with_updates(ganax_target_utilization=0.25),
        )
        assert slow.cycles > fast.cycles

    def test_uop_fetches_counted(self, dcgan_like_tconv_binding, paper_config):
        estimate = ganax_estimate(dcgan_like_tconv_binding, paper_config)
        assert estimate.counters.uop_fetches > 0
        assert estimate.counters.index_generations == 3 * estimate.counters.mac_ops
