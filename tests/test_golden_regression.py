"""Golden regression: the headline numbers of the paper reproduction.

These values were captured from the seed implementation on
``ArchitectureConfig.paper_default()`` and pin the exact per-model generator
speedups and energy reductions for all six evaluated GAN workloads, plus
their geomeans (the paper's abstract-level claims).  Runner, cache or sweep
refactors must not move these numbers at all — the tolerance only absorbs
floating-point noise from a different summation order, not model drift.

If a deliberate model change moves them, recapture the values in the same
commit and say so in the commit message.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import geometric_mean
from repro.config import ArchitectureConfig
from repro.runner import SimulationRunner
from repro.workloads.registry import all_workloads, workload_names

#: model -> (generator speedup, generator energy reduction) on paper defaults,
#: captured from the seed (git 056798f).
GOLDEN = {
    "3D-GAN": (8.294872609932957, 4.6774771943603755),
    "ArtGAN": (3.939804766358853, 2.430527162956952),
    "DCGAN": (4.55573990462587, 2.4957907010860487),
    "DiscoGAN": (3.160956537367584, 1.975331062100266),
    "GP-GAN": (3.940532910783142, 2.3379412950065754),
    "MAGAN": (2.5665611960038337, 2.018641698631775),
}

GOLDEN_GEOMEAN_SPEEDUP = 4.101361734069381
GOLDEN_GEOMEAN_ENERGY_REDUCTION = 2.5336240675564055

RELATIVE_TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def comparisons():
    runner = SimulationRunner()
    return runner.compare_models(all_workloads(), ArchitectureConfig.paper_default())


def test_golden_covers_all_registered_workloads():
    assert set(GOLDEN) == set(workload_names())


@pytest.mark.parametrize("model_name", sorted(GOLDEN))
def test_generator_speedup_pinned(comparisons, model_name):
    expected_speedup, _ = GOLDEN[model_name]
    assert comparisons[model_name].generator_speedup == pytest.approx(
        expected_speedup, rel=RELATIVE_TOLERANCE
    )


@pytest.mark.parametrize("model_name", sorted(GOLDEN))
def test_generator_energy_reduction_pinned(comparisons, model_name):
    _, expected_reduction = GOLDEN[model_name]
    assert comparisons[model_name].generator_energy_reduction == pytest.approx(
        expected_reduction, rel=RELATIVE_TOLERANCE
    )


def test_geomean_headline_numbers_pinned(comparisons):
    speedups = [c.generator_speedup for c in comparisons.values()]
    reductions = [c.generator_energy_reduction for c in comparisons.values()]
    assert geometric_mean(speedups) == pytest.approx(
        GOLDEN_GEOMEAN_SPEEDUP, rel=RELATIVE_TOLERANCE
    )
    assert geometric_mean(reductions) == pytest.approx(
        GOLDEN_GEOMEAN_ENERGY_REDUCTION, rel=RELATIVE_TOLERANCE
    )
