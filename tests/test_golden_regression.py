"""Golden regression: the headline numbers of the paper reproduction.

These values were captured from the seed implementation on
``ArchitectureConfig.paper_default()`` and pin the exact per-model generator
speedups and energy reductions for all six evaluated GAN workloads, plus
their geomeans (the paper's abstract-level claims).  Runner, cache or sweep
refactors must not move these numbers at all — the tolerance only absorbs
floating-point noise from a different summation order, not model drift.

If a deliberate model change moves them, recapture the values in the same
commit and say so in the commit message.
"""

from __future__ import annotations

import pytest

from repro.analysis.metrics import geometric_mean
from repro.analysis.serialization import workload_fingerprint
from repro.config import ArchitectureConfig
from repro.runner import SimulationRunner
from repro.workloads.registry import all_workloads, get_workload, workload_names

#: model -> (generator speedup, generator energy reduction) on paper defaults,
#: captured from the seed (git 056798f).
GOLDEN = {
    "3D-GAN": (8.294872609932957, 4.6774771943603755),
    "ArtGAN": (3.939804766358853, 2.430527162956952),
    "DCGAN": (4.55573990462587, 2.4957907010860487),
    "DiscoGAN": (3.160956537367584, 1.975331062100266),
    "GP-GAN": (3.940532910783142, 2.3379412950065754),
    "MAGAN": (2.5665611960038337, 2.018641698631775),
}

GOLDEN_GEOMEAN_SPEEDUP = 4.101361734069381
GOLDEN_GEOMEAN_ENERGY_REDUCTION = 2.5336240675564055

#: model -> (generator speedup, energy reduction) over EYERISS for the two
#: registered accelerator variants, captured when they were introduced.
#: ``ganax-noskip`` must sit just below 1x (it pays the MIMD dispatch tax
#: without harvesting sparsity) and ``ideal`` must bound ``ganax`` from above.
VARIANT_GOLDEN = {
    "ganax-noskip": {
        "3D-GAN": (0.9999998773050476, 0.9999999588418732),
        "ArtGAN": (0.9999964479908519, 0.9999991459943699),
        "DCGAN": (0.9999986032220316, 0.9999996522111371),
        "DiscoGAN": (0.9999979044826888, 0.9999995557038758),
        "GP-GAN": (0.9999977126388142, 0.9999994850515117),
        "MAGAN": (0.9999993150978908, 0.9999998522531706),
    },
    "ideal": {
        "3D-GAN": (9.378192824042289, 16.517630730754362),
        "ArtGAN": (4.538265018265018, 11.15493289810595),
        "DCGAN": (5.120830587501514, 12.145940940233249),
        "DiscoGAN": (3.4395692683231545, 9.582759131761016),
        "GP-GAN": (4.695954800317945, 12.322124297153934),
        "MAGAN": (2.958709983593652, 8.1004193059745),
    },
}

#: model -> structural fingerprint (the runner-cache workload identity),
#: captured from the seed models before the workload registry redesign.  The
#: registry must keep building byte-identical structures for the six paper
#: specs whatever happens to the builder plumbing.
GOLDEN_FINGERPRINTS = {
    "3D-GAN": "021f6abdb495d889d284f5744a168231774dbe3f32f0afb829faacc6c2c78ff8",
    "ArtGAN": "797141e7e412b53e4322e18de849bc3a7de6f1b23344b6dacca758b851c89d13",
    "DCGAN": "c98e8fc5dbea2ae4696ba686404403ce230f837e95bce1f1baacbde1e2f03469",
    "DiscoGAN": "23fa143417378c14bc4b8773252475a61b7ecd4d139765f11dcb2a147d8f8065",
    "GP-GAN": "ac6956bbd8359faa7dcfab4c5c380d80094180507f013312888ba369ca1b62a6",
    "MAGAN": "6adace1f37f0392d75dca0b757232c265e107e8c61dd2de26795b59cab1d8d84",
}

RELATIVE_TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def comparisons():
    runner = SimulationRunner()
    return runner.compare_models(all_workloads(), ArchitectureConfig.paper_default())


@pytest.fixture(scope="module")
def variant_comparisons():
    runner = SimulationRunner()
    return runner.compare_accelerators(
        all_workloads(),
        ("eyeriss", "ganax", "ganax-noskip", "ideal"),
        baseline="eyeriss",
        config=ArchitectureConfig.paper_default(),
    )


def test_golden_covers_all_registered_workloads():
    assert set(GOLDEN) == set(workload_names())


@pytest.mark.parametrize("model_name", sorted(GOLDEN_FINGERPRINTS))
def test_workload_fingerprints_pinned(model_name):
    """Registry-built paper specs stay byte-identical to the seed models."""
    assert (
        workload_fingerprint(get_workload(model_name))
        == GOLDEN_FINGERPRINTS[model_name]
    )


@pytest.mark.parametrize("model_name", sorted(GOLDEN_FINGERPRINTS))
def test_family_default_specs_are_the_paper_workloads(model_name):
    """The families' default points resolve to the pinned paper fingerprints."""
    from repro.workloads.registry import resolve_workload

    family = resolve_workload(model_name).family
    spec = resolve_workload(model_name)
    assert resolve_workload(f"{model_name}") is spec
    default_spellings = {
        "3dgan": "3dgan@64x64x64",
        "artgan": "artgan@128x128",
        "dcgan": "dcgan@64x64",
        "discogan": "discogan@64x64",
        "gpgan": "gpgan@64x64",
        "magan": "magan@ch512",
    }
    assert resolve_workload(default_spellings[family]) is spec
    assert (
        workload_fingerprint(get_workload(default_spellings[family]))
        == GOLDEN_FINGERPRINTS[model_name]
    )


@pytest.mark.parametrize("model_name", sorted(GOLDEN))
def test_generator_speedup_pinned(comparisons, model_name):
    expected_speedup, _ = GOLDEN[model_name]
    assert comparisons[model_name].generator_speedup == pytest.approx(
        expected_speedup, rel=RELATIVE_TOLERANCE
    )


@pytest.mark.parametrize("model_name", sorted(GOLDEN))
def test_generator_energy_reduction_pinned(comparisons, model_name):
    _, expected_reduction = GOLDEN[model_name]
    assert comparisons[model_name].generator_energy_reduction == pytest.approx(
        expected_reduction, rel=RELATIVE_TOLERANCE
    )


def test_geomean_headline_numbers_pinned(comparisons):
    speedups = [c.generator_speedup for c in comparisons.values()]
    reductions = [c.generator_energy_reduction for c in comparisons.values()]
    assert geometric_mean(speedups) == pytest.approx(
        GOLDEN_GEOMEAN_SPEEDUP, rel=RELATIVE_TOLERANCE
    )
    assert geometric_mean(reductions) == pytest.approx(
        GOLDEN_GEOMEAN_ENERGY_REDUCTION, rel=RELATIVE_TOLERANCE
    )


@pytest.mark.parametrize("variant", sorted(VARIANT_GOLDEN))
@pytest.mark.parametrize("model_name", sorted(GOLDEN))
def test_variant_numbers_pinned(variant_comparisons, variant, model_name):
    expected_speedup, expected_reduction = VARIANT_GOLDEN[variant][model_name]
    multi = variant_comparisons[model_name]
    assert multi.generator_speedup(variant) == pytest.approx(
        expected_speedup, rel=RELATIVE_TOLERANCE
    )
    assert multi.generator_energy_reduction(variant) == pytest.approx(
        expected_reduction, rel=RELATIVE_TOLERANCE
    )


def test_variant_ordering_invariants(variant_comparisons):
    """Physics of the design points: noskip < 1x <= ganax <= ideal."""
    for multi in variant_comparisons.values():
        assert multi.generator_speedup("eyeriss") == 1.0
        assert multi.generator_speedup("ganax-noskip") < 1.0
        assert multi.generator_speedup("ganax") > 1.0
        assert multi.generator_speedup("ideal") > multi.generator_speedup("ganax")


def test_multi_comparison_two_way_view_matches_legacy(comparisons, variant_comparisons):
    """The N-way grid's eyeriss/ganax slice is the legacy comparison exactly."""
    for name, comparison in comparisons.items():
        two_way = variant_comparisons[name].as_comparison()
        assert two_way.generator_speedup == comparison.generator_speedup
        assert (
            two_way.generator_energy_reduction
            == comparison.generator_energy_reduction
        )
