"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.serialization import (
    config_fingerprint,
    fingerprint_data,
    options_fingerprint,
    workload_fingerprint,
)
from repro.config import ArchitectureConfig, SimulationOptions
from repro.core.index_generator import GeneratorConfig, StridedIndexGenerator
from repro.hw.counters import EventCounters
from repro.hw.energy import EnergyModel
from repro.hw.fifo import Fifo
from repro.isa.assembler import assemble_line, disassemble_uop
from repro.isa.encoding import (
    decode_global_uop,
    decode_local_uop,
    encode_global_uop,
    encode_local_uop,
)
from repro.errors import IsaError
from repro.isa.uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)
from repro.nn.functional import (
    insert_zeros_2d,
    transposed_conv2d,
    transposed_conv2d_via_zero_insertion,
)
from repro.nn.layers import TransposedConvLayer
from repro.nn.shapes import FeatureMapShape, transposed_conv_output_extent
from repro.nn.zero_analysis import (
    analyze_transposed_conv,
    count_consequential_macs_bruteforce,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
tconv_geometry = st.tuples(
    st.integers(min_value=2, max_value=6),   # kernel
    st.integers(min_value=1, max_value=3),   # stride
    st.integers(min_value=2, max_value=5),   # input extent
).map(lambda t: (t[0], t[1], min(t[0] - 1, t[1]), t[2]))  # padding <= kernel-1, <= stride

local_uops = st.one_of(
    st.sampled_from([ExecuteOp.ADD, ExecuteOp.MUL, ExecuteOp.MAC, ExecuteOp.POOL, ExecuteOp.NOP]).map(
        lambda op: ExecuteUop(op=op)
    ),
    st.sampled_from(["relu", "leaky_relu", "tanh", "sigmoid", "identity"]).map(
        lambda act: ExecuteUop(op=ExecuteOp.ACT, activation=act)
    ),
    st.integers(min_value=0, max_value=4095).map(lambda n: RepeatUop(count=n)),
)

_pv_indices = st.integers(min_value=0, max_value=15)
_generators = st.sampled_from(list(AddressGenerator))

global_uops = st.one_of(
    local_uops,
    st.builds(
        AccessCfg,
        pv_index=_pv_indices,
        generator=_generators,
        register=st.sampled_from(list(ConfigRegister)),
        immediate=st.integers(min_value=0, max_value=(1 << 16) - 1),
    ),
    st.builds(AccessStart, pv_index=_pv_indices, generator=_generators),
    st.builds(AccessStop, pv_index=_pv_indices, generator=_generators),
    st.builds(
        MimdLoad,
        pv_index=_pv_indices,
        destination=st.sampled_from(MimdLoad._REGISTERS),
        immediate=st.integers(min_value=0, max_value=(1 << 16) - 1),
    ),
    st.lists(st.integers(min_value=0, max_value=15), min_size=16, max_size=16).map(
        lambda idx: MimdExecute(local_indices=tuple(idx))
    ),
)

#: (num_pvs, mimd.exe) pairs for every PV count the 64-bit index block admits.
_sized_mimd_executes = st.integers(min_value=1, max_value=16).flatmap(
    lambda n: st.lists(
        st.integers(min_value=0, max_value=15), min_size=n, max_size=n
    ).map(lambda idx: (n, MimdExecute(local_indices=tuple(idx))))
)


# ----------------------------------------------------------------------
# Transposed convolution / zero insertion invariants
# ----------------------------------------------------------------------
class TestTransposedConvProperties:
    @given(tconv_geometry, st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_scatter_equals_zero_insertion_formulation(self, geometry, seed):
        kernel, stride, padding, size = geometry
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((1, size, size))
        w = rng.standard_normal((1, 1, kernel, kernel))
        direct = transposed_conv2d(x, w, stride=stride, padding=padding)
        via_zeros = transposed_conv2d_via_zero_insertion(x, w, stride=stride, padding=padding)
        np.testing.assert_allclose(direct, via_zeros, atol=1e-9)

    @given(tconv_geometry)
    @settings(max_examples=50, deadline=None)
    def test_output_extent_formula_matches_reference_shape(self, geometry):
        kernel, stride, padding, size = geometry
        x = np.zeros((1, size, size))
        w = np.zeros((1, 1, kernel, kernel))
        out = transposed_conv2d(x, w, stride=stride, padding=padding)
        expected = transposed_conv_output_extent(size, kernel, stride, padding)
        assert out.shape == (1, expected, expected)

    @given(tconv_geometry)
    @settings(max_examples=50, deadline=None)
    def test_consequential_count_matches_bruteforce(self, geometry):
        kernel, stride, padding, size = geometry
        layer = TransposedConvLayer(
            name="t", out_channels=1, kernel=kernel, stride=stride, padding=padding
        )
        shape = FeatureMapShape.image(1, size, size)
        assert layer.consequential_macs(shape) == count_consequential_macs_bruteforce(layer, shape)

    @given(tconv_geometry)
    @settings(max_examples=50, deadline=None)
    def test_consequential_never_exceeds_total(self, geometry):
        kernel, stride, padding, size = geometry
        layer = TransposedConvLayer(
            name="t", out_channels=2, kernel=kernel, stride=stride, padding=padding
        )
        shape = FeatureMapShape.image(3, size, size)
        assert 0 < layer.consequential_macs(shape) <= layer.total_macs(shape)

    @given(tconv_geometry)
    @settings(max_examples=50, deadline=None)
    def test_number_of_row_patterns_equals_stride(self, geometry):
        kernel, stride, padding, size = geometry
        layer = TransposedConvLayer(
            name="t", out_channels=1, kernel=kernel, stride=stride, padding=padding
        )
        shape = FeatureMapShape.image(1, size, size)
        analysis = analyze_transposed_conv(layer, shape)
        out_rows = layer.output_shape(shape).spatial[0]
        assert analysis.num_patterns == min(stride, out_rows)

    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_insertion_preserves_values_and_count(self, channels, h, w, stride):
        rng = np.random.default_rng(h * 31 + w * 7 + stride)
        x = rng.standard_normal((channels, h, w)) + 1.0  # strictly non-zero
        expanded = insert_zeros_2d(x, stride)
        assert np.count_nonzero(expanded) == x.size
        np.testing.assert_array_equal(expanded[:, ::stride, ::stride], x)


# ----------------------------------------------------------------------
# ISA round-trip invariants
# ----------------------------------------------------------------------
class TestIsaProperties:
    @given(local_uops)
    @settings(max_examples=100, deadline=None)
    def test_local_encoding_roundtrip(self, uop):
        assert decode_local_uop(encode_local_uop(uop)) == uop

    @given(global_uops)
    @settings(max_examples=100, deadline=None)
    def test_global_encoding_roundtrip(self, uop):
        assert decode_global_uop(encode_global_uop(uop, num_pvs=16), num_pvs=16) == uop

    @given(global_uops)
    @settings(max_examples=100, deadline=None)
    def test_assembler_roundtrip(self, uop):
        assert assemble_line(disassemble_uop(uop)) == uop

    @given(_sized_mimd_executes)
    @settings(max_examples=100, deadline=None)
    def test_mimd_execute_roundtrips_for_every_pv_count(self, sized):
        num_pvs, uop = sized
        word = encode_global_uop(uop, num_pvs=num_pvs)
        assert decode_global_uop(word, num_pvs=num_pvs) == uop

    @given(st.integers(min_value=16, max_value=64), st.integers(min_value=0, max_value=15))
    @settings(max_examples=50, deadline=None)
    def test_out_of_range_local_index_is_rejected(self, bad_index, position):
        """A mimd.exe index past the 4-bit per-PV field must not encode."""
        indices = [0] * 16
        indices[position] = bad_index + 16  # >= 1 << PV_INDEX_FIELD_BITS
        with pytest.raises(IsaError):
            encode_global_uop(MimdExecute(local_indices=tuple(indices)), num_pvs=16)

    @given(st.integers(min_value=1, max_value=15))
    @settings(max_examples=30, deadline=None)
    def test_mimd_execute_wider_than_pv_count_is_rejected(self, num_pvs):
        """More per-PV indices than the encoding's PV count must not encode."""
        uop = MimdExecute(local_indices=tuple([0] * (num_pvs + 1)))
        with pytest.raises(IsaError):
            encode_global_uop(uop, num_pvs=num_pvs)

    @given(st.integers(min_value=1 << 12, max_value=1 << 20))
    @settings(max_examples=30, deadline=None)
    def test_oversized_repeat_count_is_rejected(self, count):
        with pytest.raises(IsaError):
            encode_local_uop(RepeatUop(count=count))

    @given(
        st.one_of(
            st.integers(min_value=-64, max_value=0),
            st.integers(min_value=17, max_value=64),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_unencodable_pv_counts_are_rejected(self, num_pvs):
        """PV counts whose index block exceeds 64 bits (or is empty) fail."""
        with pytest.raises(IsaError):
            encode_global_uop(
                MimdExecute(local_indices=tuple([0] * max(num_pvs, 0))),
                num_pvs=num_pvs,
            )


# ----------------------------------------------------------------------
# Strided index generator invariants
# ----------------------------------------------------------------------
class TestIndexGeneratorProperties:
    @given(
        st.integers(min_value=0, max_value=200),   # offset
        st.integers(min_value=1, max_value=8),     # step
        st.integers(min_value=1, max_value=40),    # end
        st.integers(min_value=0, max_value=6),     # repeat
    )
    @settings(max_examples=100, deadline=None)
    def test_drain_length_matches_prediction(self, offset, step, end, repeat):
        end = max(end, step)  # the hardware constrains Step <= End
        config = GeneratorConfig(addr=0, offset=offset, step=step, end=end, repeat=repeat)
        generator = StridedIndexGenerator()
        generator.configure(config)
        generator.start()
        addresses = generator.drain()
        assert len(addresses) == config.total_addresses()

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_addresses_stay_in_configured_range(self, offset, step, end, repeat):
        end = max(end, step)  # the hardware constrains Step <= End
        generator = StridedIndexGenerator()
        generator.configure(GeneratorConfig(addr=0, offset=offset, step=step, end=end, repeat=repeat))
        generator.start()
        for address in generator.drain():
            assert offset <= address < offset + end


# ----------------------------------------------------------------------
# Configuration fingerprint invariants (simulation cache keys)
# ----------------------------------------------------------------------
#: Fields a sweep plausibly varies, with value strategies that keep the
#: configuration valid under ArchitectureConfig's __post_init__ checks.
_SWEEPABLE_FIELDS = {
    "num_pvs": st.integers(min_value=1, max_value=64),
    "pes_per_pv": st.integers(min_value=1, max_value=64),
    "frequency_hz": st.sampled_from([100e6, 250e6, 500e6, 1e9]),
    "data_bits": st.sampled_from([8, 16, 32]),
    "dram_bandwidth_bytes_per_cycle": st.sampled_from([8.0, 16.0, 32.0, 64.0, 128.0]),
    "mimd_dispatch_overhead_cycles": st.integers(min_value=0, max_value=64),
    "zero_gating_energy_fraction": st.sampled_from([0.0, 0.1, 0.25, 0.5, 1.0]),
    "ganax_target_utilization": st.sampled_from([0.25, 0.5, 0.75, 0.92, 1.0]),
}

arch_configs = st.fixed_dictionaries(
    {},
    optional=_SWEEPABLE_FIELDS,
).map(lambda updates: ArchitectureConfig.paper_default().with_updates(**updates))

sim_options = st.builds(
    SimulationOptions,
    batch_size=st.integers(min_value=1, max_value=16),
    include_discriminator=st.booleans(),
    magan_discriminator_conv_only=st.booleans(),
)


class TestFingerprintProperties:
    @given(arch_configs, st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_stable_across_field_ordering(self, config, rnd):
        """Reordering the serialized fields must not change the fingerprint."""
        items = list(config.to_mapping().items())
        rnd.shuffle(items)
        shuffled = ArchitectureConfig.from_mapping(dict(items))
        assert config_fingerprint(shuffled) == config_fingerprint(config)

    @given(arch_configs, st.sampled_from(sorted(_SWEEPABLE_FIELDS)))
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_changes_when_any_swept_field_changes(self, config, field_name):
        """with_updates on any sweepable field must produce a new fingerprint."""
        current = getattr(config, field_name)
        # pick a valid value different from the current one
        candidates = [
            value
            for value in (1, 2, 8, 16, 0.5, 0.75, 500e6, 64.0)
            if value != current
        ]
        for candidate in candidates:
            try:
                changed = config.with_updates(**{field_name: candidate})
            except Exception:
                continue
            assert config_fingerprint(changed) != config_fingerprint(config)
            return
        pytest.skip("no alternative valid value found for this field")

    @given(arch_configs)
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_roundtrips_through_serialization(self, config):
        """to_mapping -> from_mapping reproduces the config and its fingerprint."""
        rebuilt = ArchitectureConfig.from_mapping(config.to_mapping())
        assert rebuilt == config
        assert config_fingerprint(rebuilt) == config_fingerprint(config)

    @given(sim_options)
    @settings(max_examples=60, deadline=None)
    def test_options_fingerprint_roundtrips_and_discriminates(self, options):
        rebuilt = SimulationOptions.from_mapping(options.to_mapping())
        assert rebuilt == options
        assert options_fingerprint(rebuilt) == options_fingerprint(options)
        bumped = options.with_updates(batch_size=options.batch_size + 1)
        assert options_fingerprint(bumped) != options_fingerprint(options)

    @given(arch_configs, arch_configs)
    @settings(max_examples=60, deadline=None)
    def test_equal_configs_iff_equal_fingerprints(self, left, right):
        """The fingerprint is a faithful content hash over the config space."""
        assert (left == right) == (
            config_fingerprint(left) == config_fingerprint(right)
        )

    def test_int_and_float_spellings_of_equal_configs_hash_equal(self):
        """64 == 64.0, so both spellings must produce one cache key."""
        base = ArchitectureConfig.paper_default()
        as_int = base.with_updates(dram_bandwidth_bytes_per_cycle=64)
        as_float = base.with_updates(dram_bandwidth_bytes_per_cycle=64.0)
        assert as_int == as_float == base
        assert (
            config_fingerprint(as_int)
            == config_fingerprint(as_float)
            == config_fingerprint(base)
        )
        assert config_fingerprint(
            base.with_updates(frequency_hz=int(base.frequency_hz))
        ) == config_fingerprint(base)

    def test_workload_fingerprint_ignores_object_identity(self):
        from repro.workloads.dcgan import build_dcgan

        assert workload_fingerprint(build_dcgan()) == workload_fingerprint(
            build_dcgan()
        )

    def test_workload_fingerprints_distinguish_models(self):
        from repro.workloads.registry import all_workloads

        fingerprints = {workload_fingerprint(m) for m in all_workloads()}
        assert len(fingerprints) == 6

    @given(st.dictionaries(st.text(max_size=8), st.integers(), max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_fingerprint_data_insensitive_to_insertion_order(self, mapping):
        reversed_mapping = dict(reversed(list(mapping.items())))
        assert fingerprint_data(reversed_mapping) == fingerprint_data(mapping)


# ----------------------------------------------------------------------
# FIFO, counters and energy invariants
# ----------------------------------------------------------------------
class TestHardwareProperties:
    @given(st.lists(st.integers(), max_size=64), st.integers(min_value=1, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_fifo_preserves_order(self, items, depth):
        fifo = Fifo(depth=depth)
        accepted = []
        for item in items:
            if fifo.try_push(item):
                accepted.append(item)
        popped = []
        while not fifo.is_empty:
            popped.append(fifo.pop())
        assert popped == accepted[: len(popped)]
        assert len(popped) == min(len(accepted), depth)

    @given(
        st.dictionaries(
            st.sampled_from(list(EventCounters().as_dict().keys())),
            st.integers(min_value=0, max_value=10_000),
            max_size=6,
        ),
        st.dictionaries(
            st.sampled_from(list(EventCounters().as_dict().keys())),
            st.integers(min_value=0, max_value=10_000),
            max_size=6,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_counter_addition_is_commutative_and_exact(self, left, right):
        a = EventCounters(**left)
        b = EventCounters(**right)
        assert (a + b).as_dict() == (b + a).as_dict()
        for key, value in (a + b).as_dict().items():
            assert value == a.as_dict()[key] + b.as_dict()[key]

    @given(
        st.dictionaries(
            st.sampled_from(list(EventCounters().as_dict().keys())),
            st.integers(min_value=0, max_value=10_000),
            max_size=8,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_energy_is_nonnegative_and_additive(self, counts):
        model = EnergyModel()
        counters = EventCounters(**counts)
        breakdown = model.energy_of(counters)
        assert breakdown.total_pj >= 0.0
        doubled = model.energy_of(counters + counters)
        assert doubled.total_pj == pytest.approx(2 * breakdown.total_pj)


# ----------------------------------------------------------------------
# Pareto frontier properties (repro.dse)
# ----------------------------------------------------------------------
from repro.dse import DesignPoint, EvaluatedPoint, Objective, ParetoFrontier, dominates  # noqa: E402

PARETO_OBJECTIVES = (
    Objective("speedup", "max"),
    Objective("energy", "min"),
    Objective("area", "min"),
)

#: A small value grid on purpose: ties and duplicate objective vectors are the
#: interesting edge cases of a dominance ordering.
objective_vectors = st.lists(
    st.tuples(*(st.sampled_from([0.5, 1.0, 2.0, 4.0]) for _ in PARETO_OBJECTIVES)),
    min_size=1,
    max_size=10,
)


def _evaluated_points(vectors):
    return [
        EvaluatedPoint(
            point=DesignPoint.from_mapping({"num_pvs": index + 1}),
            objectives={
                objective.name: value
                for objective, value in zip(PARETO_OBJECTIVES, vector)
            },
        )
        for index, vector in enumerate(vectors)
    ]


class TestParetoFrontierProperties:
    @given(objective_vectors)
    @settings(max_examples=200, deadline=None)
    def test_no_frontier_point_dominates_another(self, vectors):
        frontier = ParetoFrontier(PARETO_OBJECTIVES, _evaluated_points(vectors))
        for a in frontier.frontier:
            for b in frontier.frontier:
                assert not dominates(a, b, PARETO_OBJECTIVES)

    @given(objective_vectors)
    @settings(max_examples=200, deadline=None)
    def test_every_dominated_point_is_excluded_for_a_reason(self, vectors):
        points = _evaluated_points(vectors)
        frontier = ParetoFrontier(PARETO_OBJECTIVES, points)
        # exact partition of the (deduplicated) input...
        assert set(frontier.frontier) | set(frontier.dominated) == set(points)
        assert not set(frontier.frontier) & set(frontier.dominated)
        # ...and each excluded point is witnessed by a frontier point
        for excluded in frontier.dominated:
            assert any(
                dominates(winner, excluded, PARETO_OBJECTIVES)
                for winner in frontier.frontier
            )

    @given(objective_vectors, st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_frontier_invariant_to_order_and_duplication(self, vectors, rng):
        points = _evaluated_points(vectors)
        reference = ParetoFrontier(PARETO_OBJECTIVES, points)
        shuffled = list(points)
        rng.shuffle(shuffled)
        assert ParetoFrontier(PARETO_OBJECTIVES, shuffled) == reference
        duplicated = points + shuffled + points
        assert ParetoFrontier(PARETO_OBJECTIVES, duplicated) == reference


# ----------------------------------------------------------------------
# Workload registry invariants (repro.workloads.registry)
# ----------------------------------------------------------------------
from repro.errors import WorkloadError  # noqa: E402
from repro.workloads.registry import (  # noqa: E402
    clear_cache,
    get_workload,
    register_workload,
    resolve_workload,
    unregister_workload,
    workload_names,
)

#: Strategy over valid synthetic-family spec strings.  Stride 1 with an even
#: kernel is the one knob combination without an exact extent-preserving
#: geometry (output_padding must be < stride), so it is filtered out.
synthetic_specs = (
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.sampled_from([8, 16, 64, 128]),
        st.sampled_from([2, 3, 4, 5]),
        st.sampled_from([1, 2, 4]),
        st.integers(min_value=0, max_value=100),
    )
    .filter(lambda knobs: not (knobs[3] == 1 and knobs[2] % 2 == 0))
    .map(lambda knobs: "synthetic@d{}c{}k{}s{}z{}".format(*knobs))
)

#: Paper workload spellings: canonical names plus relaxed aliases and the
#: families' default-point spec strings, which must all converge.
paper_spellings = st.sampled_from(
    [
        ("DCGAN", "dcgan", "DcGaN", "dcgan@64x64", "dcgan@size=64"),
        ("GP-GAN", "gpgan", "gp_gan", "gpgan@64x64"),
        ("3D-GAN", "3dgan", "threedgan", "3dgan@64x64x64"),
        ("ArtGAN", "artgan", "artgan@128x128", "artgan@ch1024"),
        ("MAGAN", "magan", "magan@ch512"),
        ("DiscoGAN", "discogan", "discogan@64x64"),
    ]
)


class TestWorkloadRegistryProperties:
    @given(synthetic_specs)
    @settings(max_examples=40, deadline=None)
    def test_fingerprint_stable_across_registry_roundtrips(self, spec):
        """Resolve -> build -> clear -> rebuild must fingerprint identically."""
        first = workload_fingerprint(get_workload(spec))
        clear_cache()
        rebuilt = get_workload(spec)
        assert workload_fingerprint(rebuilt) == first
        # and the memoized spec still names the same canonical point
        assert resolve_workload(spec).name == rebuilt.name

    @given(synthetic_specs)
    @settings(max_examples=40, deadline=None)
    def test_resolution_is_canonical_and_idempotent(self, spec):
        resolved = resolve_workload(spec)
        assert resolve_workload(resolved.name) is resolved
        assert resolve_workload(spec.upper()) is resolved

    @given(paper_spellings)
    @settings(max_examples=24, deadline=None)
    def test_equivalent_spellings_converge_on_one_spec(self, spellings):
        canonical = resolve_workload(spellings[0])
        for spelling in spellings[1:]:
            assert resolve_workload(spelling) is canonical

    def test_workload_names_equals_spec_resolution(self):
        """Every listed name resolves to a spec carrying exactly that name."""
        for name in workload_names():
            assert resolve_workload(name).name == name

    @given(st.text(alphabet="abcdefgh-", min_size=1, max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_duplicate_registration_always_raises(self, raw_name):
        name = f"prop-{raw_name.strip('-') or 'x'}"
        builder = lambda: None  # noqa: E731 - never built
        register_workload(name)(builder)
        try:
            with pytest.raises(WorkloadError):
                register_workload(name)(builder)
            with pytest.raises(WorkloadError):
                register_workload(name.upper())(builder)
        finally:
            unregister_workload(name)

    def test_registration_order_is_preserved(self):
        names = [f"prop-order-{i}" for i in range(5)]
        for name in names:
            register_workload(name)(lambda: None)
        try:
            assert list(workload_names())[-len(names):] == names
        finally:
            for name in names:
                unregister_workload(name)
