"""Byte-identical parity: the `default` schedule == the pre-schedule compiler.

The schedule subsystem's core promise is that the algorithm half never moved:
lowering a layer with the builtin ``default`` :class:`~repro.schedule.ScheduleSpec`
must reproduce the row tasks and µop streams of the compiler as it existed
*before* the algorithm–schedule split, byte for byte, and the six golden paper
numbers must be untouched when the schedule is spelled explicitly.

To make that claim falsifiable without trusting the refactored code to test
itself, this module freezes the **legacy** planners and wave builder verbatim
(copied from git history, commit 4697b63, ``src/repro/core/compiler.py``) and
compares their output against the current schedule-aware entry points across
the full workload × skip_zeros grid and, for end-to-end results, across every
registered accelerator.

If a deliberate lowering change moves the default µop stream, the legacy
copies below must be updated in the same commit — and the commit message must
say the default schedule changed, because every cached result and golden
keyed on the default fingerprint moves with it.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import pytest

from repro.accelerators import accelerator_names, create_accelerator
from repro.analysis.metrics import geometric_mean
from repro.config import ArchitectureConfig, SimulationOptions
from repro.core.compiler import (
    ColumnWork,
    RowTask,
    _bind,
    _chunk,
    _column_window,
    compile_layer_programs,
    plan_dense_row_tasks,
    plan_ganax_row_tasks,
)
from repro.core.dataflow import DataflowSchedule, build_schedule
from repro.errors import CompilationError
from repro.isa.program import MicroProgram, MicroProgramBuilder
from repro.isa.uops import (
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    RepeatUop,
)
from repro.nn.layers import ConvLayer, TransposedConvLayer
from repro.nn.network import LayerBinding
from repro.nn.shapes import FeatureMapShape
from repro.runner import SimulationRunner
from repro.workloads.registry import all_workloads, get_workload, workload_names

NUM_PVS = 16
PES_PER_PV = 16
#: representative tile bounds — identical caps on both compilers, so the
#: comparison still exercises multi-wave chunking and column truncation.
MAX_WAVES = 2
MAX_COLUMNS = 6

#: the six paper numbers, pinned in tests/test_golden_regression.py; spelled
#: again here so an explicit ``schedule="default"`` run is checked against
#: the *same* values, not against a re-run that could drift in lockstep.
GOLDEN = {
    "3D-GAN": (8.294872609932957, 4.6774771943603755),
    "ArtGAN": (3.939804766358853, 2.430527162956952),
    "DCGAN": (4.55573990462587, 2.4957907010860487),
    "DiscoGAN": (3.160956537367584, 1.975331062100266),
    "GP-GAN": (3.940532910783142, 2.3379412950065754),
    "MAGAN": (2.5665611960038337, 2.018641698631775),
}
GOLDEN_GEOMEAN_SPEEDUP = 4.101361734069381
GOLDEN_GEOMEAN_ENERGY_REDUCTION = 2.5336240675564055
RELATIVE_TOLERANCE = 1e-12


# ----------------------------------------------------------------------
# The legacy compiler, frozen verbatim (git 4697b63, pre-schedule split).
# Only the function names carry a `legacy_` prefix; bodies are unchanged.
# Dataclasses and helpers that survived the refactor untouched (RowTask,
# ColumnWork, _column_window, _chunk, _bind, MicroProgramBuilder) are
# imported from the current modules — they ARE the legacy definitions.
# ----------------------------------------------------------------------
def legacy_plan_ganax_row_tasks(
    layer: TransposedConvLayer,
    in_cols: int,
    schedule: DataflowSchedule,
    num_pvs: int,
) -> List[RowTask]:
    tasks: List[RowTask] = []
    pv = 0
    for group in schedule.row_groups:
        for output_row in group.output_rows:
            columns = tuple(
                ColumnWork(
                    taps=taps,
                    input_base=input_base,
                    weight_base=kernel_cols[0],
                    weight_step=layer.stride[1],
                    output_column=out_col,
                )
                for out_col in range(schedule.output_cols)
                for taps, kernel_cols, input_base in [
                    _column_window(out_col, layer, in_cols)
                ]
                if taps > 0
            )
            tasks.append(
                RowTask(
                    pv_index=pv % num_pvs,
                    output_row=output_row,
                    filter_rows=group.filter_rows,
                    columns=columns,
                )
            )
            pv += 1
    return tasks


def legacy_plan_dense_row_tasks(
    out_rows: int,
    out_cols: int,
    k_rows: int,
    k_cols: int,
    stride: int,
    num_pvs: int,
) -> List[RowTask]:
    tasks: List[RowTask] = []
    for i, row in enumerate(range(out_rows)):
        columns = tuple(
            ColumnWork(
                taps=k_cols,
                input_base=out_col * stride,
                weight_base=0,
                weight_step=1,
                output_column=out_col,
            )
            for out_col in range(out_cols)
        )
        tasks.append(
            RowTask(
                pv_index=i % num_pvs,
                output_row=row,
                filter_rows=tuple(range(k_rows)),
                columns=columns,
            )
        )
    return tasks


def legacy_build_wave_program(
    name: str, wave: Sequence[RowTask], num_pvs: int
) -> MicroProgram:
    builder = MicroProgramBuilder(name=name, num_pvs=num_pvs)
    mac = ExecuteUop(op=ExecuteOp.MAC)
    act = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
    rep = RepeatUop()
    nop = ExecuteUop(op=ExecuteOp.NOP)

    by_pv = {task.pv_index: task for task in wave}
    max_columns = max(len(task.columns) for task in wave)
    column_active: List[List[int]] = [
        [
            pv
            for pv in range(num_pvs)
            if by_pv.get(pv) is not None and column_index < len(by_pv[pv].columns)
        ]
        for column_index in range(max_columns)
    ]
    emitted = [active for active in column_active if active]
    mac_idx: Dict[int, int] = {}
    act_idx: Dict[int, int] = {}
    rep_idx: Dict[int, int] = {}
    nop_idx: Dict[int, int] = {}
    for pv in range(num_pvs):
        if any(pv in active for active in emitted):
            mac_idx[pv] = builder.preload_local(pv, mac)
            act_idx[pv] = builder.preload_local(pv, act)
            rep_idx[pv] = builder.preload_local(pv, rep)
        if any(pv not in active for active in emitted):
            nop_idx[pv] = builder.preload_local(pv, nop)

    for column_index in range(max_columns):
        active_pvs = column_active[column_index]
        for pv in active_pvs:
            work = by_pv[pv].columns[column_index]
            legacy_emit_generator(
                builder, pv, AddressGenerator.INPUT,
                offset=work.input_base, end=work.taps, repeat=1,
            )
            legacy_emit_generator(
                builder, pv, AddressGenerator.WEIGHT,
                offset=work.weight_base,
                end=(work.taps - 1) * work.weight_step + 1,
                repeat=1,
                step=work.weight_step,
            )
            legacy_emit_generator(
                builder, pv, AddressGenerator.OUTPUT,
                offset=work.output_column, end=1, repeat=1,
            )
            builder.emit_mimd_load(pv, "repeat", work.taps)
        if not active_pvs:
            continue

        def indices(active_map, idle_map):
            return [
                active_map[pv] if pv in active_pvs else idle_map[pv]
                for pv in range(num_pvs)
            ]

        builder.emit_mimd(indices(rep_idx, nop_idx))
        builder.emit_mimd(indices(mac_idx, nop_idx))
        builder.emit_mimd(indices(act_idx, nop_idx))
    return builder.build()


def legacy_emit_generator(
    builder: MicroProgramBuilder,
    pv: int,
    generator: AddressGenerator,
    *,
    offset: int,
    end: int,
    repeat: int,
    step: int = 1,
    addr: int = 0,
) -> None:
    step = min(step, end)
    builder.emit_access_cfg(pv, generator, ConfigRegister.ADDR, addr)
    builder.emit_access_cfg(pv, generator, ConfigRegister.OFFSET, offset)
    builder.emit_access_cfg(pv, generator, ConfigRegister.STEP, step)
    builder.emit_access_cfg(pv, generator, ConfigRegister.END, end)
    builder.emit_access_cfg(pv, generator, ConfigRegister.REPEAT, repeat)
    builder.emit_access_start(pv, generator)


def legacy_compile_layer_programs(
    binding: LayerBinding,
    *,
    num_pvs: int,
    pes_per_pv: int,
    skip_zeros: bool = True,
    max_waves=None,
    max_columns=None,
) -> Tuple[MicroProgram, ...]:
    if num_pvs <= 0 or pes_per_pv <= 0:
        raise CompilationError("compile dimensions must be positive")
    layer = binding.layer
    if not isinstance(layer, (ConvLayer, TransposedConvLayer)):
        raise CompilationError(
            f"{binding.name}: only convolutional layers compile to micro-programs, "
            f"got {type(layer).__name__}"
        )
    in_rows, in_cols = binding.input_shape.spatial[-2:]
    slice_cls = (
        TransposedConvLayer if isinstance(layer, TransposedConvLayer) else ConvLayer
    )
    slice_layer = slice_cls(
        name=layer.name,
        out_channels=1,
        kernel=(layer.kernel[-2], layer.kernel[-1]),
        stride=(layer.stride[-2], layer.stride[-1]),
        padding=(layer.padding[-2], layer.padding[-1]),
    )
    slice_binding = _bind(slice_layer, FeatureMapShape.image(1, in_rows, in_cols))
    out_rows, out_cols = slice_binding.output_shape.spatial
    k_rows, k_cols = slice_layer.kernel

    if isinstance(slice_layer, TransposedConvLayer) and skip_zeros:
        schedule = build_schedule(slice_binding)
        max_active = max(len(g.filter_rows) for g in schedule.row_groups)
        if max_active > pes_per_pv:
            raise CompilationError(
                f"{binding.name}: needs {max_active} active PEs per PV but the "
                f"target has only {pes_per_pv}"
            )
        tasks = legacy_plan_ganax_row_tasks(slice_layer, in_cols, schedule, num_pvs)
    else:
        if k_rows > pes_per_pv:
            raise CompilationError(
                f"{binding.name}: kernel height {k_rows} exceeds {pes_per_pv} PEs per PV"
            )
        stride = (
            1 if isinstance(slice_layer, TransposedConvLayer) else slice_layer.stride[1]
        )
        tasks = legacy_plan_dense_row_tasks(
            out_rows, out_cols, k_rows, k_cols, stride, num_pvs
        )

    if max_columns is not None:
        tasks = [
            RowTask(
                pv_index=task.pv_index,
                output_row=task.output_row,
                filter_rows=task.filter_rows,
                columns=task.columns[:max_columns],
            )
            for task in tasks
        ]
    tasks = [task for task in tasks if task.columns]
    if not tasks:
        return ()
    waves = _chunk(tasks, num_pvs)
    if max_waves is not None:
        waves = waves[:max_waves]
    return tuple(
        legacy_build_wave_program(binding.name, wave, num_pvs) for wave in waves
    )


# ----------------------------------------------------------------------
# Grid enumeration
# ----------------------------------------------------------------------
def _compilable_bindings(workload: str) -> List[Tuple[str, LayerBinding]]:
    model = get_workload(workload)
    out = []
    for net in (model.generator, model.discriminator):
        for binding in net.bindings:
            if isinstance(binding.layer, (ConvLayer, TransposedConvLayer)):
                out.append((f"{net.name}/{binding.name}", binding))
    return out


GRID = [
    pytest.param(workload, label, binding, skip_zeros,
                 id=f"{workload}-{label}-{'skip' if skip_zeros else 'dense'}")
    for workload in workload_names()
    for label, binding in _compilable_bindings(workload)
    for skip_zeros in (True, False)
]


# ----------------------------------------------------------------------
# µop-stream and row-task parity
# ----------------------------------------------------------------------
class TestProgramParity:
    @pytest.mark.parametrize("workload,label,binding,skip_zeros", GRID)
    def test_default_schedule_is_byte_identical(
        self, workload, label, binding, skip_zeros
    ):
        """Current default-spec output == frozen legacy output, byte for byte."""
        try:
            legacy = legacy_compile_layer_programs(
                binding,
                num_pvs=NUM_PVS,
                pes_per_pv=PES_PER_PV,
                skip_zeros=skip_zeros,
                max_waves=MAX_WAVES,
                max_columns=MAX_COLUMNS,
            )
        except CompilationError:
            with pytest.raises(CompilationError):
                compile_layer_programs(
                    binding,
                    num_pvs=NUM_PVS,
                    pes_per_pv=PES_PER_PV,
                    skip_zeros=skip_zeros,
                    max_waves=MAX_WAVES,
                    max_columns=MAX_COLUMNS,
                    schedule="default",
                )
            return
        current = compile_layer_programs(
            binding,
            num_pvs=NUM_PVS,
            pes_per_pv=PES_PER_PV,
            skip_zeros=skip_zeros,
            max_waves=MAX_WAVES,
            max_columns=MAX_COLUMNS,
            schedule="default",
        )
        assert len(current) == len(legacy)
        for new_prog, old_prog in zip(current, legacy):
            assert new_prog.uop_records() == old_prog.uop_records()
            assert new_prog.disassemble() == old_prog.disassemble()

    def test_none_schedule_means_default(self):
        """``schedule=None`` and ``schedule="default"`` are the same lowering."""
        binding = _compilable_bindings("dcgan")[0][1]
        by_none = compile_layer_programs(
            binding, num_pvs=NUM_PVS, pes_per_pv=PES_PER_PV,
            max_waves=1, max_columns=4,
        )
        by_name = compile_layer_programs(
            binding, num_pvs=NUM_PVS, pes_per_pv=PES_PER_PV,
            max_waves=1, max_columns=4, schedule="default",
        )
        assert [p.uop_records() for p in by_none] == [
            p.uop_records() for p in by_name
        ]


class TestRowTaskParity:
    """The planners themselves (row groups, PV assignment, column order)."""

    def _tconv_slice(self, binding):
        layer = binding.layer
        slice_layer = TransposedConvLayer(
            name=layer.name,
            out_channels=1,
            kernel=(layer.kernel[-2], layer.kernel[-1]),
            stride=(layer.stride[-2], layer.stride[-1]),
            padding=(layer.padding[-2], layer.padding[-1]),
        )
        in_rows, in_cols = binding.input_shape.spatial[-2:]
        return slice_layer, _bind(
            slice_layer, FeatureMapShape.image(1, in_rows, in_cols)
        ), in_cols

    def test_ganax_row_tasks_identical_on_every_tconv(self):
        checked = 0
        for workload in workload_names():
            for _, binding in _compilable_bindings(workload):
                if not isinstance(binding.layer, TransposedConvLayer):
                    continue
                slice_layer, slice_binding, in_cols = self._tconv_slice(binding)
                schedule = build_schedule(slice_binding)
                legacy = legacy_plan_ganax_row_tasks(
                    slice_layer, in_cols, schedule, NUM_PVS
                )
                current = plan_ganax_row_tasks(
                    slice_layer, in_cols, schedule, NUM_PVS
                )
                assert current == legacy
                checked += 1
        assert checked > 0

    def test_dense_row_tasks_identical(self):
        for out_rows, out_cols, k, stride in [(32, 32, 5, 2), (8, 8, 3, 1)]:
            legacy = legacy_plan_dense_row_tasks(
                out_rows, out_cols, k, k, stride, NUM_PVS
            )
            current = plan_dense_row_tasks(
                out_rows, out_cols, k, k, stride, NUM_PVS
            )
            assert current == legacy

    def test_row_groups_untouched_by_spec_threading(self):
        """build_schedule's group decomposition (the algorithm half) is
        identical whether or not a spec is passed."""
        _, binding = _compilable_bindings("dcgan")[0]
        _, slice_binding, _ = self._tconv_slice(binding)
        assert (
            build_schedule(slice_binding).row_groups
            == build_schedule(slice_binding, "default").row_groups
            == build_schedule(slice_binding, "colmajor@tile4").row_groups
        )


# ----------------------------------------------------------------------
# End-to-end parity: results and the six golden paper numbers
# ----------------------------------------------------------------------
class TestResultParity:
    @pytest.mark.parametrize("accelerator", sorted(accelerator_names()))
    def test_explicit_default_schedule_changes_nothing(self, accelerator):
        """Every registered accelerator: default options == explicit default."""
        model = get_workload("dcgan")
        config = ArchitectureConfig.paper_default()
        implicit = create_accelerator(accelerator, config=config).simulate_gan(model)
        explicit = create_accelerator(
            accelerator, config=config, options=SimulationOptions(schedule="default")
        ).simulate_gan(model)
        assert explicit == implicit

    @pytest.fixture(scope="class")
    def comparisons(self):
        runner = SimulationRunner()
        return runner.compare_models(
            all_workloads(),
            ArchitectureConfig.paper_default(),
            SimulationOptions(schedule="default"),
        )

    @pytest.mark.parametrize("model_name", sorted(GOLDEN))
    def test_paper_numbers_pinned_under_explicit_schedule(
        self, comparisons, model_name
    ):
        speedup, reduction = GOLDEN[model_name]
        assert comparisons[model_name].generator_speedup == pytest.approx(
            speedup, rel=RELATIVE_TOLERANCE
        )
        assert comparisons[model_name].generator_energy_reduction == pytest.approx(
            reduction, rel=RELATIVE_TOLERANCE
        )

    def test_geomeans_pinned_under_explicit_schedule(self, comparisons):
        speedups = [comparisons[m].generator_speedup for m in GOLDEN]
        reductions = [comparisons[m].generator_energy_reduction for m in GOLDEN]
        assert geometric_mean(speedups) == pytest.approx(
            GOLDEN_GEOMEAN_SPEEDUP, rel=RELATIVE_TOLERANCE
        )
        assert geometric_mean(reductions) == pytest.approx(
            GOLDEN_GEOMEAN_ENERGY_REDUCTION, rel=RELATIVE_TOLERANCE
        )
