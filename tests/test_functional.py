"""Unit tests for the NumPy functional reference (conv / transposed conv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.functional import (
    conv2d,
    conv3d,
    genuine_mask_2d,
    insert_zeros_2d,
    insert_zeros_nd,
    leaky_relu,
    relu,
    sigmoid,
    tanh,
    transposed_conv2d,
    transposed_conv2d_via_zero_insertion,
    transposed_conv3d,
)


class TestZeroInsertion:
    def test_insert_zeros_2d_shape(self, rng):
        x = rng.standard_normal((2, 4, 4))
        out = insert_zeros_2d(x, 2)
        assert out.shape == (2, 7, 7)

    def test_insert_zeros_2d_preserves_values(self, rng):
        x = rng.standard_normal((1, 3, 3))
        out = insert_zeros_2d(x, 2)
        assert np.allclose(out[:, ::2, ::2], x)

    def test_insert_zeros_2d_inserted_positions_are_zero(self, rng):
        x = rng.standard_normal((1, 3, 3)) + 10.0
        out = insert_zeros_2d(x, 2)
        assert np.all(out[:, 1::2, :] == 0)
        assert np.all(out[:, :, 1::2] == 0)

    def test_insert_zeros_2d_stride1_is_identity(self, rng):
        x = rng.standard_normal((3, 5, 5))
        assert np.array_equal(insert_zeros_2d(x, 1), x)

    def test_insert_zeros_2d_anisotropic(self, rng):
        x = rng.standard_normal((1, 3, 4))
        out = insert_zeros_2d(x, (2, 3))
        assert out.shape == (1, 5, 10)

    def test_insert_zeros_2d_rejects_bad_rank(self, rng):
        with pytest.raises(ShapeError):
            insert_zeros_2d(rng.standard_normal((4, 4)), 2)

    def test_insert_zeros_nd_3d(self, rng):
        x = rng.standard_normal((2, 3, 3, 3))
        out = insert_zeros_nd(x, (2, 2, 2))
        assert out.shape == (2, 5, 5, 5)
        assert np.allclose(out[:, ::2, ::2, ::2], x)

    def test_insert_zeros_nd_rejects_rank_mismatch(self, rng):
        with pytest.raises(ShapeError):
            insert_zeros_nd(rng.standard_normal((2, 3, 3)), (2, 2, 2))

    def test_genuine_mask_counts(self):
        mask = genuine_mask_2d((4, 4), stride=2, kernel=5, padding=2)
        # Exactly the 16 genuine positions are marked.
        assert mask.sum() == 16

    def test_genuine_mask_matches_zero_count(self, rng):
        # Count of consequential MACs via mask equals direct enumeration.
        mask = genuine_mask_2d((4, 4), stride=2, kernel=5, padding=2)
        total = 0
        for oy in range(7):
            for ox in range(7):
                total += int(mask[oy : oy + 5, ox : ox + 5].sum())
        assert total > 0
        assert total < 7 * 7 * 25


class TestConv2d:
    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 5, 5))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = conv2d(x, w, stride=1, padding=1)
        assert np.allclose(out, x)

    def test_output_shape_stride2(self, rng):
        x = rng.standard_normal((3, 8, 8))
        w = rng.standard_normal((4, 3, 4, 4))
        out = conv2d(x, w, stride=2, padding=1)
        assert out.shape == (4, 4, 4)

    def test_averaging_kernel(self):
        x = np.ones((1, 4, 4))
        w = np.full((1, 1, 2, 2), 0.25)
        out = conv2d(x, w, stride=2, padding=0)
        assert np.allclose(out, 1.0)

    def test_linearity(self, rng):
        x1 = rng.standard_normal((2, 6, 6))
        x2 = rng.standard_normal((2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))
        lhs = conv2d(x1 + x2, w, padding=1)
        rhs = conv2d(x1, w, padding=1) + conv2d(x2, w, padding=1)
        assert np.allclose(lhs, rhs)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(rng.standard_normal((2, 4, 4)), rng.standard_normal((1, 3, 3, 3)))

    def test_kernel_too_large_raises(self, rng):
        with pytest.raises(ShapeError):
            conv2d(rng.standard_normal((1, 2, 2)), rng.standard_normal((1, 1, 5, 5)))


class TestTransposedConv2d:
    def test_output_shape(self, rng):
        x = rng.standard_normal((2, 4, 4))
        w = rng.standard_normal((2, 3, 4, 4))
        out = transposed_conv2d(x, w, stride=2, padding=1)
        assert out.shape == (3, 8, 8)

    def test_matches_zero_insertion_formulation(self, rng):
        x = rng.standard_normal((2, 4, 4))
        w = rng.standard_normal((2, 3, 5, 5))
        direct = transposed_conv2d(x, w, stride=2, padding=2)
        via_zeros = transposed_conv2d_via_zero_insertion(x, w, stride=2, padding=2)
        assert np.allclose(direct, via_zeros)

    def test_matches_zero_insertion_stride3(self, rng):
        x = rng.standard_normal((1, 3, 3))
        w = rng.standard_normal((1, 2, 4, 4))
        direct = transposed_conv2d(x, w, stride=3, padding=1)
        via_zeros = transposed_conv2d_via_zero_insertion(x, w, stride=3, padding=1)
        assert np.allclose(direct, via_zeros)

    def test_adjoint_of_convolution(self, rng):
        """Transposed convolution is the adjoint of convolution:
        <conv(x), y> == <x, tconv(y)> for matching geometries."""
        c_in, c_out = 2, 3
        x = rng.standard_normal((c_in, 8, 8))
        w = rng.standard_normal((c_out, c_in, 4, 4))
        y = rng.standard_normal((c_out, 4, 4))
        conv_out = conv2d(x, w, stride=2, padding=1)
        lhs = float(np.sum(conv_out * y))
        # The conv weight (M, C, kH, kW) is read by the transposed convolution
        # as (C_in=M, C_out=C, kH, kW): applying it to y lands back in x-space.
        tconv_out = transposed_conv2d(y, w, stride=2, padding=1)
        rhs = float(np.sum(x * tconv_out))
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_single_pixel_scatter(self):
        x = np.zeros((1, 3, 3))
        x[0, 1, 1] = 1.0
        w = np.arange(9, dtype=float).reshape(1, 1, 3, 3)
        out = transposed_conv2d(x, w, stride=2, padding=1)
        # The single non-zero input scatters a copy of the kernel (clipped by
        # padding) centred at output position (2, 2).
        assert out.shape == (1, 5, 5)
        assert out[0, 2, 2] == w[0, 0, 1, 1]

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ShapeError):
            transposed_conv2d(rng.standard_normal((2, 4, 4)), rng.standard_normal((3, 1, 3, 3)))


class TestConv3d:
    def test_output_shape(self, rng):
        x = rng.standard_normal((2, 8, 8, 8))
        w = rng.standard_normal((4, 2, 4, 4, 4))
        out = conv3d(x, w, stride=2, padding=1)
        assert out.shape == (4, 4, 4, 4)

    def test_identity_kernel(self, rng):
        x = rng.standard_normal((1, 4, 4, 4))
        w = np.zeros((1, 1, 3, 3, 3))
        w[0, 0, 1, 1, 1] = 1.0
        assert np.allclose(conv3d(x, w, stride=1, padding=1), x)

    def test_transposed_conv3d_shape(self, rng):
        x = rng.standard_normal((2, 4, 4, 4))
        w = rng.standard_normal((2, 1, 4, 4, 4))
        out = transposed_conv3d(x, w, stride=2, padding=1)
        assert out.shape == (1, 8, 8, 8)

    def test_transposed_conv3d_adjoint(self, rng):
        x = rng.standard_normal((1, 4, 4, 4))
        w = rng.standard_normal((2, 1, 4, 4, 4))
        y = rng.standard_normal((2, 2, 2, 2))
        conv_out = conv3d(x, w, stride=2, padding=1)
        lhs = float(np.sum(conv_out * y))
        tconv_out = transposed_conv3d(y, w, stride=2, padding=1)
        rhs = float(np.sum(x * tconv_out))
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestActivations:
    def test_relu(self):
        assert np.array_equal(relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        out = leaky_relu(np.array([-1.0, 2.0]), negative_slope=0.2)
        assert out[0] == pytest.approx(-0.2)
        assert out[1] == pytest.approx(2.0)

    def test_tanh_bounds(self, rng):
        out = tanh(rng.standard_normal(100) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_sigmoid_bounds(self, rng):
        out = sigmoid(rng.standard_normal(100) * 10)
        assert np.all((out > 0) & (out < 1))
