"""Tests for the functional (NumPy) network inference runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NetworkError, ShapeError
from repro.hw.fixed_point import FixedPointFormat, quantize
from repro.nn.inference import NetworkRunner, run_generator
from repro.nn.layers import (
    ActivationLayer,
    ConvLayer,
    DenseLayer,
    PoolingLayer,
    ReshapeLayer,
    TransposedConvLayer,
)
from repro.nn.network import Network
from repro.nn.shapes import FeatureMapShape
from repro.workloads import get_workload


def _tiny_generator() -> Network:
    return Network(
        name="tiny_gen",
        input_shape=FeatureMapShape.vector(16),
        layers=(
            DenseLayer(name="fc", out_features=8 * 4 * 4),
            ReshapeLayer(name="reshape", target=FeatureMapShape.image(8, 4, 4)),
            ActivationLayer(name="a0", function="relu"),
            TransposedConvLayer(name="t1", out_channels=4, kernel=4, stride=2, padding=1),
            ActivationLayer(name="a1", function="relu"),
            TransposedConvLayer(name="t2", out_channels=1, kernel=4, stride=2, padding=1),
            ActivationLayer(name="a2", function="tanh"),
        ),
    )


class TestNetworkRunner:
    def test_tiny_generator_output_shape(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        out = runner.run(rng.standard_normal((16, 1)))
        assert out.shape == (1, 16, 16)

    def test_output_respects_final_tanh(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        out = runner.run(rng.standard_normal((16, 1)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_collect_activations(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        out, activations = runner.run(rng.standard_normal((16, 1)), collect_activations=True)
        assert set(activations) == {b.name for b in runner.network.bindings}
        assert activations["a2"].shape == out.shape
        assert activations["t1"].shape == (4, 8, 8)

    def test_input_shape_checked(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        with pytest.raises(ShapeError):
            runner.run(rng.standard_normal((15, 1)))

    def test_parameter_count_matches_layer_accounting(self, rng):
        network = _tiny_generator()
        runner = NetworkRunner(network, rng=rng)
        # Weight tensors match the symbolic weight counts; biases/bn add extras.
        symbolic = network.total_weights()
        assert runner.total_parameters() >= symbolic

    def test_set_weight_overrides(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        weight = runner.parameters("t2").weight
        runner.set_weight("t2", np.zeros_like(weight))
        out = runner.run(rng.standard_normal((16, 1)))
        assert np.allclose(out, 0.0)  # tanh(0) == 0

    def test_set_weight_shape_checked(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        with pytest.raises(ShapeError):
            runner.set_weight("t2", np.zeros((1, 1, 2, 2)))

    def test_unknown_layer_parameters(self, rng):
        runner = NetworkRunner(_tiny_generator(), rng=rng)
        with pytest.raises(NetworkError):
            runner.parameters("missing")

    def test_deterministic_given_seeded_rng(self):
        latent = np.ones((16, 1))
        out1 = NetworkRunner(_tiny_generator(), rng=np.random.default_rng(7)).run(latent)
        out2 = NetworkRunner(_tiny_generator(), rng=np.random.default_rng(7)).run(latent)
        np.testing.assert_array_equal(out1, out2)

    def test_pooling_and_conv_network(self, rng):
        network = Network(
            name="cnn",
            input_shape=FeatureMapShape.image(1, 8, 8),
            layers=(
                ConvLayer(name="c1", out_channels=4, kernel=3, stride=1, padding=1),
                ActivationLayer(name="a1", function="leaky_relu"),
                PoolingLayer(name="p1", kernel=2, stride=2),
                DenseLayer(name="fc", out_features=1),
                ActivationLayer(name="s", function="sigmoid"),
            ),
        )
        runner = NetworkRunner(network, rng=rng)
        out = runner.run(rng.standard_normal((1, 8, 8)))
        assert out.shape == (1, 1)
        assert 0.0 < out[0, 0] < 1.0

    def test_invalid_weight_scale(self):
        with pytest.raises(NetworkError):
            NetworkRunner(_tiny_generator(), weight_scale=0.0)


class TestWorkloadInference:
    def test_dcgan_generator_produces_image(self):
        generator = get_workload("DCGAN").generator
        image = run_generator(generator, seed=1)
        assert image.shape == (3, 64, 64)
        assert np.all(np.abs(image) <= 1.0)  # tanh output

    def test_magan_generator_produces_image(self):
        generator = get_workload("MAGAN").generator
        image = run_generator(generator, seed=2)
        assert image.shape == (3, 64, 64)

    def test_discriminator_scores_generated_image(self, rng):
        model = get_workload("DCGAN")
        image = run_generator(model.generator, seed=3)
        score = NetworkRunner(model.discriminator, rng=rng).run(image)
        assert score.shape == (1, 1)
        assert np.isfinite(score).all()


class TestFixedPointEndToEnd:
    def test_16bit_quantisation_error_is_small(self, rng):
        """Quantising activations to the 16-bit grid after every layer changes
        the tiny generator's output only marginally — the datapath precision
        the paper assumes is adequate for these workloads."""
        network = _tiny_generator()
        latent = rng.standard_normal((16, 1))
        runner = NetworkRunner(network, rng=np.random.default_rng(11))
        reference, activations = runner.run(latent, collect_activations=True)

        fmt = FixedPointFormat.q2_13()
        quantised = latent
        runner2 = NetworkRunner(network, rng=np.random.default_rng(11))
        x = quantised
        for binding in network.bindings:
            x = runner2._run_layer(binding.layer, x)  # noqa: SLF001 - white-box test
            x = quantize(x, fmt)
        assert np.max(np.abs(x - reference)) < 0.02
