"""Unit tests for the cycle-level GANAX machine and the global controller."""

from __future__ import annotations

import pytest

from repro.core.machine import GanaxMachine
from repro.errors import SimulationError
from repro.isa.program import MicroProgramBuilder
from repro.isa.uops import (
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    RepeatUop,
)


def _machine(num_pvs=2, pes_per_pv=2) -> GanaxMachine:
    return GanaxMachine(
        num_pvs=num_pvs,
        pes_per_pv=pes_per_pv,
        pe_buffer_words={"input": 16, "weight": 16, "output": 16},
    )


def _dot_product_program(num_pvs: int, length: int, simd: bool):
    """A program computing a dot product of `length` elements on every PE."""
    builder = MicroProgramBuilder(name="dot", num_pvs=num_pvs)
    mac = ExecuteUop(op=ExecuteOp.MAC)
    act = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
    rep = RepeatUop()
    mac_idx = builder.preload_local_everywhere(mac)
    act_idx = builder.preload_local_everywhere(act)
    rep_idx = builder.preload_local_everywhere(rep)
    for pv in range(num_pvs):
        for generator, end in (
            (AddressGenerator.INPUT, length),
            (AddressGenerator.WEIGHT, length),
            (AddressGenerator.OUTPUT, 1),
        ):
            builder.emit_access_cfg(pv, generator, ConfigRegister.ADDR, 0)
            builder.emit_access_cfg(pv, generator, ConfigRegister.OFFSET, 0)
            builder.emit_access_cfg(pv, generator, ConfigRegister.STEP, 1)
            builder.emit_access_cfg(pv, generator, ConfigRegister.END, end)
            builder.emit_access_cfg(pv, generator, ConfigRegister.REPEAT, 1)
            builder.emit_access_start(pv, generator)
        builder.emit_mimd_load(pv, "repeat", length)
    if simd:
        builder.emit_simd(rep)
        builder.emit_simd(mac)
        builder.emit_simd(act)
    else:
        builder.emit_mimd([rep_idx[pv] for pv in range(num_pvs)])
        builder.emit_mimd([mac_idx[pv] for pv in range(num_pvs)])
        builder.emit_mimd([act_idx[pv] for pv in range(num_pvs)])
    return builder.build()


class TestMachineExecution:
    @pytest.mark.parametrize("simd", [True, False], ids=["simd", "mimd-simd"])
    def test_dot_product_on_every_pe(self, simd):
        machine = _machine()
        for pv in range(2):
            for pe in range(2):
                machine.load_pe_operands(pv, pe, [1.0, 2.0, 3.0], [2.0, 2.0, 2.0])
        machine.load_program(_dot_product_program(2, 3, simd=simd))
        stats = machine.run()
        for pv in range(2):
            for pe in range(2):
                value = machine.pv(pv).pe(pe).read_output_row(1)[0]
                assert value == pytest.approx(12.0)
        assert stats.cycles > 0
        assert stats.executed_pe_uops > 0

    def test_mimd_mode_lets_pvs_differ(self):
        """Different PVs execute different µops from their local buffers."""
        builder = MicroProgramBuilder(name="diff", num_pvs=2)
        mac = ExecuteUop(op=ExecuteOp.MAC)
        nop = ExecuteUop(op=ExecuteOp.NOP)
        act = ExecuteUop(op=ExecuteOp.ACT, activation="identity")
        mac_idx = builder.preload_local_everywhere(mac)
        nop_idx = builder.preload_local_everywhere(nop)
        act_idx = builder.preload_local_everywhere(act)
        # Only PV0 gets configured address streams and a real MAC; PV1 NOPs.
        for generator, end in (
            (AddressGenerator.INPUT, 1),
            (AddressGenerator.WEIGHT, 1),
            (AddressGenerator.OUTPUT, 1),
        ):
            builder.emit_access_cfg(0, generator, ConfigRegister.END, end)
            builder.emit_access_cfg(0, generator, ConfigRegister.REPEAT, 1)
            builder.emit_access_start(0, generator)
        builder.emit_mimd([mac_idx[0], nop_idx[1]])
        builder.emit_mimd([act_idx[0], nop_idx[1]])
        program = builder.build()

        machine = _machine()
        machine.load_pe_operands(0, 0, [3.0], [4.0])
        machine.load_pe_operands(0, 1, [3.0], [4.0])
        machine.load_program(program)
        machine.run()
        assert machine.pv(0).pe(0).read_output_row(1)[0] == pytest.approx(12.0)
        # PV1 executed only NOPs and wrote nothing.
        assert machine.pv(1).pe(0).read_output_row(1)[0] == 0.0

    def test_program_pv_count_must_match(self):
        machine = _machine(num_pvs=2)
        with pytest.raises(SimulationError):
            machine.load_program(_dot_product_program(3, 2, simd=True))

    def test_counters_accumulate_activity(self):
        machine = _machine()
        for pv in range(2):
            for pe in range(2):
                machine.load_pe_operands(pv, pe, [1.0, 1.0], [1.0, 1.0])
        machine.load_program(_dot_product_program(2, 2, simd=True))
        machine.run()
        counters = machine.counters
        assert counters.mac_ops == 2 * 2 * 2  # 2 MACs on each of 4 PEs
        assert counters.index_generations > 0
        assert counters.uop_fetches > 0

    def test_run_statistics_consistency(self):
        machine = _machine()
        for pv in range(2):
            for pe in range(2):
                machine.load_pe_operands(pv, pe, [1.0], [1.0])
        machine.load_program(_dot_product_program(2, 1, simd=True))
        stats = machine.run()
        assert stats.dispatched_uops == machine.cycle - stats.dispatch_stall_cycles
        assert 0.0 <= stats.pe_occupancy <= 1.0

    def test_accumulate_pv_after_run(self):
        machine = _machine()
        for pe in range(2):
            machine.load_pe_operands(0, pe, [1.0, 2.0], [1.0, 1.0])
        machine.load_program(_dot_product_program(2, 2, simd=True))
        machine.run()
        total = machine.accumulate_pv(0, width=1, active_pes=2)
        assert total[0] == pytest.approx(6.0)

    def test_deadlock_guard_raises(self):
        machine = _machine()
        builder = MicroProgramBuilder(name="stall", num_pvs=2)
        builder.preload_local_everywhere(ExecuteUop(op=ExecuteOp.MAC))
        # A MAC with no configured address streams can never execute.
        builder.emit_simd(ExecuteUop(op=ExecuteOp.MAC))
        machine.load_program(builder.build())
        with pytest.raises(SimulationError):
            machine.run(max_cycles=200)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(SimulationError):
            GanaxMachine(num_pvs=0, pes_per_pv=2)

    def test_pv_lookup_bounds(self):
        machine = _machine()
        with pytest.raises(SimulationError):
            machine.pv(5)
