"""Tests for the headline-claims experiment."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentContext, experiment_ids, run_experiment
from repro.experiments import headline


@pytest.fixture(scope="module")
def context() -> ExperimentContext:
    return ExperimentContext()


class TestHeadline:
    def test_registered(self):
        assert "headline" in experiment_ids()

    def test_runs_via_registry(self, context):
        result = run_experiment("headline", context)
        assert result.experiment_id == "headline"
        assert "Claim" in result.report

    def test_speedup_and_energy_in_paper_ballpark(self, context):
        measured = headline.compute_headline(context)
        assert 2.0 <= measured["geomean_speedup"] <= 6.0
        assert 1.5 <= measured["geomean_energy_reduction"] <= 5.0

    def test_utilization_near_90_percent(self, context):
        measured = headline.compute_headline(context)
        assert 0.80 <= measured["mean_ganax_utilization"] <= 1.0

    def test_area_overhead_single_digit_percent(self, context):
        measured = headline.compute_headline(context)
        assert 0.05 <= measured["area_overhead_fraction"] <= 0.11

    def test_no_discriminator_penalty(self, context):
        """GANAX must not slow down conventional convolution at all."""
        measured = headline.compute_headline(context)
        assert measured["worst_discriminator_penalty"] == pytest.approx(0.0, abs=1e-9)

    def test_report_lists_all_five_claims(self, context):
        report = headline.run(context).report
        assert report.count("\n") >= 7  # title + separator + header + 5 rows
        for keyword in ("speedup", "energy", "utilization", "Area", "Discriminator"):
            assert keyword in report
