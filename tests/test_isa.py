"""Unit tests for the GANAX µop ISA: definitions, encoding, assembler, programs."""

from __future__ import annotations

import pytest

from repro.errors import AssemblerError, IsaError, ProgramError
from repro.isa.assembler import assemble, assemble_line, disassemble, disassemble_uop
from repro.isa.encoding import (
    GLOBAL_UOP_BITS,
    LOCAL_UOP_BITS,
    decode_global_uop,
    decode_local_uop,
    encode_global_uop,
    encode_local_uop,
    encoded_size_bits,
    is_mimd_word,
)
from repro.isa.program import MicroProgram, MicroProgramBuilder
from repro.isa.uops import (
    AccessCfg,
    AccessStart,
    AccessStop,
    AddressGenerator,
    ConfigRegister,
    ExecuteOp,
    ExecuteUop,
    MimdExecute,
    MimdLoad,
    RepeatUop,
)


class TestUopDefinitions:
    def test_access_cfg_fields(self):
        uop = AccessCfg(
            pv_index=3,
            generator=AddressGenerator.WEIGHT,
            register=ConfigRegister.STEP,
            immediate=7,
        )
        assert uop.mnemonic == "access.cfg"
        assert uop.is_access and not uop.is_execute and not uop.is_mimd

    def test_access_cfg_rejects_wide_immediate(self):
        with pytest.raises(IsaError):
            AccessCfg(
                pv_index=0,
                generator=AddressGenerator.INPUT,
                register=ConfigRegister.ADDR,
                immediate=1 << 16,
            )

    def test_execute_uop_groups(self):
        mac = ExecuteUop(op=ExecuteOp.MAC)
        assert mac.is_execute and not mac.is_mimd
        assert mac.mnemonic == "mac"

    def test_act_requires_known_activation(self):
        with pytest.raises(IsaError):
            ExecuteUop(op=ExecuteOp.ACT, activation="swish")

    def test_repeat_rejects_negative(self):
        with pytest.raises(IsaError):
            RepeatUop(count=-1)

    def test_mimd_load_register_validation(self):
        with pytest.raises(IsaError):
            MimdLoad(pv_index=0, destination="bogus", immediate=1)

    def test_mimd_exe_uniformity(self):
        assert MimdExecute(local_indices=(2, 2, 2)).is_uniform
        assert not MimdExecute(local_indices=(0, 1)).is_uniform

    def test_mimd_exe_requires_indices(self):
        with pytest.raises(IsaError):
            MimdExecute(local_indices=())


class TestEncoding:
    LOCAL_UOPS = [
        ExecuteUop(op=ExecuteOp.ADD),
        ExecuteUop(op=ExecuteOp.MUL),
        ExecuteUop(op=ExecuteOp.MAC),
        ExecuteUop(op=ExecuteOp.POOL),
        ExecuteUop(op=ExecuteOp.ACT, activation="tanh"),
        ExecuteUop(op=ExecuteOp.ACT, activation="sigmoid"),
        ExecuteUop(op=ExecuteOp.NOP),
        RepeatUop(count=0),
        RepeatUop(count=37),
    ]

    @pytest.mark.parametrize("uop", LOCAL_UOPS, ids=lambda u: repr(u))
    def test_local_roundtrip(self, uop):
        word = encode_local_uop(uop)
        assert 0 <= word < (1 << LOCAL_UOP_BITS)
        assert decode_local_uop(word) == uop

    GLOBAL_UOPS = [
        AccessCfg(pv_index=5, generator=AddressGenerator.OUTPUT,
                  register=ConfigRegister.REPEAT, immediate=1023),
        AccessStart(pv_index=15, generator=AddressGenerator.INPUT),
        AccessStop(pv_index=0, generator=AddressGenerator.WEIGHT),
        MimdLoad(pv_index=7, destination="repeat", immediate=255),
        MimdExecute(local_indices=tuple(range(16))),
        ExecuteUop(op=ExecuteOp.MAC),
        RepeatUop(count=12),
    ]

    @pytest.mark.parametrize("uop", GLOBAL_UOPS, ids=lambda u: repr(u))
    def test_global_roundtrip(self, uop):
        word = encode_global_uop(uop, num_pvs=16)
        # 64-bit payload plus a small opcode/mode sideband.
        assert 0 <= word < (1 << (GLOBAL_UOP_BITS + 5))
        assert decode_global_uop(word, num_pvs=16) == uop

    def test_mode_bit_distinguishes_mimd(self):
        simd_word = encode_global_uop(ExecuteUop(op=ExecuteOp.MAC))
        mimd_word = encode_global_uop(MimdExecute(local_indices=(0,) * 16))
        assert not is_mimd_word(simd_word)
        assert is_mimd_word(mimd_word)

    def test_mimd_exe_index_field_width(self):
        # Indices wider than 4 bits cannot be encoded (paper: 4 bits per PV).
        with pytest.raises(IsaError):
            encode_global_uop(MimdExecute(local_indices=(16,)), num_pvs=16)

    def test_mimd_exe_too_many_pvs(self):
        with pytest.raises(IsaError):
            encode_global_uop(MimdExecute(local_indices=(0,) * 17), num_pvs=17)

    def test_encoded_sizes(self):
        assert encoded_size_bits(ExecuteUop(op=ExecuteOp.MAC)) == LOCAL_UOP_BITS
        assert encoded_size_bits(MimdExecute(local_indices=(0,))) == GLOBAL_UOP_BITS

    def test_decode_rejects_out_of_range_words(self):
        with pytest.raises(IsaError):
            decode_local_uop(1 << 16)
        with pytest.raises(IsaError):
            decode_global_uop(1 << 72)

    def test_access_cfg_cannot_be_local(self):
        with pytest.raises(IsaError):
            encode_local_uop(
                AccessCfg(pv_index=0, generator=AddressGenerator.INPUT,
                          register=ConfigRegister.ADDR, immediate=0)
            )


class TestAssembler:
    def test_assemble_access_cfg(self):
        uop = assemble_line("access.cfg %pv2, %gen1, %step, 4")
        assert uop == AccessCfg(
            pv_index=2,
            generator=AddressGenerator.WEIGHT,
            register=ConfigRegister.STEP,
            immediate=4,
        )

    def test_assemble_named_generators(self):
        uop = assemble_line("access.start %pv0, %input")
        assert uop == AccessStart(pv_index=0, generator=AddressGenerator.INPUT)

    def test_assemble_mimd_exe(self):
        uop = assemble_line("mimd.exe 0, 1, 2, 3")
        assert uop == MimdExecute(local_indices=(0, 1, 2, 3))

    def test_assemble_act_with_activation(self):
        uop = assemble_line("act tanh")
        assert uop == ExecuteUop(op=ExecuteOp.ACT, activation="tanh")

    def test_assemble_repeat_default_count(self):
        assert assemble_line("repeat") == RepeatUop(count=0)

    def test_comments_and_blank_lines_skipped(self):
        uops = assemble("""
        # a comment
        mac
        ; another comment
        add
        """)
        assert [u.mnemonic for u in uops] == ["mac", "add"]

    def test_line_numbers_in_errors(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("mac\nbogus.op")

    def test_unknown_register_raises(self):
        with pytest.raises(AssemblerError):
            assemble_line("access.cfg %pv0, %gen0, %count, 1")

    def test_mac_with_operands_raises(self):
        with pytest.raises(AssemblerError):
            assemble_line("mac %r1, %r2")

    def test_hex_immediates(self):
        uop = assemble_line("mimd.ld %pv1, %repeat, 0x10")
        assert uop == MimdLoad(pv_index=1, destination="repeat", immediate=16)

    ROUNDTRIP_UOPS = [
        AccessCfg(pv_index=1, generator=AddressGenerator.INPUT,
                  register=ConfigRegister.END, immediate=9),
        AccessStart(pv_index=2, generator=AddressGenerator.OUTPUT),
        AccessStop(pv_index=3, generator=AddressGenerator.WEIGHT),
        MimdLoad(pv_index=4, destination="repeat", immediate=12),
        MimdExecute(local_indices=(1, 0, 3)),
        RepeatUop(count=5),
        RepeatUop(count=0),
        ExecuteUop(op=ExecuteOp.MAC),
        ExecuteUop(op=ExecuteOp.ACT, activation="leaky_relu"),
        ExecuteUop(op=ExecuteOp.POOL),
    ]

    @pytest.mark.parametrize("uop", ROUNDTRIP_UOPS, ids=lambda u: repr(u))
    def test_disassemble_assemble_roundtrip(self, uop):
        text = disassemble_uop(uop)
        assert assemble_line(text) == uop

    def test_disassemble_multiline(self):
        uops = [ExecuteUop(op=ExecuteOp.MAC), RepeatUop(count=3)]
        text = disassemble(uops)
        assert assemble(text) == uops


class TestMicroProgram:
    def _simple_program(self) -> MicroProgram:
        builder = MicroProgramBuilder(name="p", num_pvs=2)
        mac_idx = builder.preload_local_everywhere(ExecuteUop(op=ExecuteOp.MAC))
        act_idx = builder.preload_local_everywhere(ExecuteUop(op=ExecuteOp.ACT, activation="identity"))
        builder.emit_access_cfg(0, AddressGenerator.INPUT, ConfigRegister.END, 4)
        builder.emit_access_start(0, AddressGenerator.INPUT)
        builder.emit_mimd_load(1, "repeat", 4)
        builder.emit_mimd([mac_idx[0], act_idx[1]])
        builder.emit_simd(ExecuteUop(op=ExecuteOp.MAC))
        return builder.build()

    def test_builder_produces_valid_program(self):
        program = self._simple_program()
        assert program.num_pvs == 2
        assert program.num_global_uops == 5
        assert program.max_local_buffer_entries == 2

    def test_preload_deduplicates(self):
        builder = MicroProgramBuilder(name="p", num_pvs=1)
        first = builder.preload_local(0, ExecuteUop(op=ExecuteOp.MAC))
        second = builder.preload_local(0, ExecuteUop(op=ExecuteOp.MAC))
        assert first == second

    def test_count_by_kind(self):
        counts = self._simple_program().count_by_kind()
        assert counts["access.cfg"] == 1
        assert counts["mimd.exe"] == 1
        assert counts["mac"] == 1

    def test_mimd_and_simd_counts(self):
        program = self._simple_program()
        assert program.mimd_uop_count() == 1
        assert program.simd_uop_count() == 1

    def test_local_index_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            MicroProgram(
                name="bad",
                num_pvs=1,
                local_uops=((ExecuteUop(op=ExecuteOp.MAC),),),
                global_uops=(MimdExecute(local_indices=(3,)),),
            )

    def test_pv_index_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            MicroProgram(
                name="bad",
                num_pvs=1,
                local_uops=((),),
                global_uops=(AccessStart(pv_index=2, generator=AddressGenerator.INPUT),),
            )

    def test_wrong_arity_mimd_exe_rejected(self):
        with pytest.raises(ProgramError):
            MicroProgram(
                name="bad",
                num_pvs=2,
                local_uops=((ExecuteUop(op=ExecuteOp.MAC),),) * 2,
                global_uops=(MimdExecute(local_indices=(0,)),),
            )

    def test_access_uop_cannot_live_in_local_buffer(self):
        with pytest.raises(ProgramError):
            MicroProgram(
                name="bad",
                num_pvs=1,
                local_uops=((AccessStart(pv_index=0, generator=AddressGenerator.INPUT),),),
                global_uops=(),
            )

    def test_validate_against_buffers(self):
        program = self._simple_program()
        program.validate_against_buffers(local_entries=16)
        with pytest.raises(ProgramError):
            program.validate_against_buffers(local_entries=1)
        with pytest.raises(ProgramError):
            program.validate_against_buffers(local_entries=16, global_entries=2)

    def test_encoded_footprints(self):
        program = self._simple_program()
        assert program.global_buffer_bits() == 5 * GLOBAL_UOP_BITS
        assert program.local_buffer_bits() == 4 * LOCAL_UOP_BITS
        assert len(program.encoded_global_words()) == 5
        assert all(len(words) == 2 for words in program.encoded_local_words())

    def test_builder_rejects_bad_pv(self):
        builder = MicroProgramBuilder(name="p", num_pvs=1)
        with pytest.raises(ProgramError):
            builder.emit_access_start(3, AddressGenerator.INPUT)
