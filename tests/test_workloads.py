"""Unit tests for the six GAN workload definitions (Table I)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.experiments.paper_data import TABLE1_LAYER_COUNTS
from repro.workloads.registry import all_workloads, get_workload, workload_names


class TestRegistry:
    def test_six_workloads(self):
        assert len(workload_names()) == 6
        assert len(all_workloads()) == 6

    def test_paper_order(self):
        assert workload_names() == (
            "3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN"
        )

    def test_aliases_resolve(self):
        assert get_workload("dcgan").name == "DCGAN"
        assert get_workload("3dgan").name == "3D-GAN"
        assert get_workload("gp-gan").name == "GP-GAN"
        assert get_workload("GPGAN").name == "GP-GAN"

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("StyleGAN")

    def test_models_are_cached(self):
        assert get_workload("DCGAN") is get_workload("DCGAN")


class TestTable1LayerCounts:
    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_layer_counts_match_table1(self, name):
        model = get_workload(name)
        assert model.layer_counts() == TABLE1_LAYER_COUNTS[name]

    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_models_have_description_and_year(self, name):
        model = get_workload(name)
        assert model.description
        assert 2014 <= model.year <= 2018


class TestGeneratorStructure:
    def test_dcgan_generator_output_is_64x64_rgb(self):
        model = get_workload("DCGAN")
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_threedgan_generator_output_is_64_cubed(self):
        model = get_workload("3D-GAN")
        assert model.generator.output_shape.as_tuple() == (1, 64, 64, 64)

    def test_artgan_generator_output_is_128x128(self):
        model = get_workload("ArtGAN")
        assert model.generator.output_shape.spatial == (128, 128)

    def test_discogan_generator_is_image_to_image(self):
        model = get_workload("DiscoGAN")
        assert model.generator.input_shape.as_tuple() == (3, 64, 64)
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_magan_generator_output_is_64x64_rgb(self):
        model = get_workload("MAGAN")
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_magan_discriminator_counts_conv_only(self):
        model = get_workload("MAGAN")
        assert model.discriminator_conv_only
        bindings = model.discriminator_bindings_for_accounting()
        assert all(not b.is_transposed for b in bindings)
        assert len(bindings) == 6

    def test_generators_use_stride2_upsampling(self):
        for name in ("DCGAN", "ArtGAN", "GP-GAN"):
            model = get_workload(name)
            strides = [
                b.layer.stride[0]
                for b in model.generator.transposed_bindings()
            ]
            assert all(s == 2 for s in strides)


class TestZeroFractions:
    def test_threedgan_has_highest_fraction(self):
        fractions = {
            m.name: m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        }
        assert max(fractions, key=fractions.get) == "3D-GAN"

    def test_magan_has_lowest_fraction(self):
        fractions = {
            m.name: m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        }
        assert min(fractions, key=fractions.get) == "MAGAN"

    def test_average_fraction_exceeds_60_percent(self):
        """Figure 1: more than 60% of TConv multiply-adds are inconsequential."""
        fractions = [
            m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        ]
        assert sum(fractions) / len(fractions) > 0.60

    def test_all_fractions_below_one(self):
        for model in all_workloads():
            assert model.generator_tconv_inconsequential_fraction() < 1.0

    def test_threedgan_fraction_around_80_percent(self):
        fraction = get_workload("3D-GAN").generator_tconv_inconsequential_fraction()
        assert 0.75 <= fraction <= 0.92


class TestWorkloadScale:
    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_generators_have_giga_mac_scale_compute(self, name):
        """Every generator should be a realistic, compute-heavy network."""
        model = get_workload(name)
        assert model.generator.total_macs() > 1e8

    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_discriminators_have_compute(self, name):
        model = get_workload(name)
        assert model.discriminator.total_macs() > 1e7

    def test_threedgan_is_the_largest_generator(self):
        macs = {m.name: m.generator.total_macs() for m in all_workloads()}
        assert max(macs, key=macs.get) == "3D-GAN"
