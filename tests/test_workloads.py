"""Unit tests for the GAN workload definitions (Table I) and the registry."""

from __future__ import annotations

import pytest

from repro.errors import UnknownWorkloadError, WorkloadError
from repro.experiments.paper_data import TABLE1_LAYER_COUNTS
from repro.nn.network import GANModel
from repro.workloads.registry import (
    all_workloads,
    expand_workload_family,
    get_workload,
    get_workload_family,
    register_workload,
    register_workload_family,
    resolve_workload,
    unregister_workload,
    workload_families,
    workload_names,
    workload_version_for,
)


class TestRegistry:
    def test_six_workloads(self):
        assert len(workload_names()) == 6
        assert len(all_workloads()) == 6

    def test_paper_order(self):
        assert workload_names() == (
            "3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN"
        )

    def test_aliases_resolve(self):
        assert get_workload("dcgan").name == "DCGAN"
        assert get_workload("3dgan").name == "3D-GAN"
        assert get_workload("gp-gan").name == "GP-GAN"
        assert get_workload("GPGAN").name == "GP-GAN"

    def test_unknown_workload_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("StyleGAN")

    def test_models_are_cached(self):
        assert get_workload("DCGAN") is get_workload("DCGAN")


class TestTable1LayerCounts:
    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_layer_counts_match_table1(self, name):
        model = get_workload(name)
        assert model.layer_counts() == TABLE1_LAYER_COUNTS[name]

    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_models_have_description_and_year(self, name):
        model = get_workload(name)
        assert model.description
        assert 2014 <= model.year <= 2018


class TestGeneratorStructure:
    def test_dcgan_generator_output_is_64x64_rgb(self):
        model = get_workload("DCGAN")
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_threedgan_generator_output_is_64_cubed(self):
        model = get_workload("3D-GAN")
        assert model.generator.output_shape.as_tuple() == (1, 64, 64, 64)

    def test_artgan_generator_output_is_128x128(self):
        model = get_workload("ArtGAN")
        assert model.generator.output_shape.spatial == (128, 128)

    def test_discogan_generator_is_image_to_image(self):
        model = get_workload("DiscoGAN")
        assert model.generator.input_shape.as_tuple() == (3, 64, 64)
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_magan_generator_output_is_64x64_rgb(self):
        model = get_workload("MAGAN")
        assert model.generator.output_shape.as_tuple() == (3, 64, 64)

    def test_magan_discriminator_counts_conv_only(self):
        model = get_workload("MAGAN")
        assert model.discriminator_conv_only
        bindings = model.discriminator_bindings_for_accounting()
        assert all(not b.is_transposed for b in bindings)
        assert len(bindings) == 6

    def test_generators_use_stride2_upsampling(self):
        for name in ("DCGAN", "ArtGAN", "GP-GAN"):
            model = get_workload(name)
            strides = [
                b.layer.stride[0]
                for b in model.generator.transposed_bindings()
            ]
            assert all(s == 2 for s in strides)


class TestZeroFractions:
    def test_threedgan_has_highest_fraction(self):
        fractions = {
            m.name: m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        }
        assert max(fractions, key=fractions.get) == "3D-GAN"

    def test_magan_has_lowest_fraction(self):
        fractions = {
            m.name: m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        }
        assert min(fractions, key=fractions.get) == "MAGAN"

    def test_average_fraction_exceeds_60_percent(self):
        """Figure 1: more than 60% of TConv multiply-adds are inconsequential."""
        fractions = [
            m.generator_tconv_inconsequential_fraction() for m in all_workloads()
        ]
        assert sum(fractions) / len(fractions) > 0.60

    def test_all_fractions_below_one(self):
        for model in all_workloads():
            assert model.generator_tconv_inconsequential_fraction() < 1.0

    def test_threedgan_fraction_around_80_percent(self):
        fraction = get_workload("3D-GAN").generator_tconv_inconsequential_fraction()
        assert 0.75 <= fraction <= 0.92


class TestWorkloadScale:
    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_generators_have_giga_mac_scale_compute(self, name):
        """Every generator should be a realistic, compute-heavy network."""
        model = get_workload(name)
        assert model.generator.total_macs() > 1e8

    @pytest.mark.parametrize("name", list(TABLE1_LAYER_COUNTS))
    def test_discriminators_have_compute(self, name):
        model = get_workload(name)
        assert model.discriminator.total_macs() > 1e7

    def test_threedgan_is_the_largest_generator(self):
        macs = {m.name: m.generator.total_macs() for m in all_workloads()}
        assert max(macs, key=macs.get) == "3D-GAN"


# ----------------------------------------------------------------------
# The open registry: specs, custom registrations, families
# ----------------------------------------------------------------------
class TestWorkloadSpecs:
    def test_every_name_resolves_to_its_own_spec(self):
        for name in workload_names():
            spec = resolve_workload(name)
            assert spec.name == name
            assert spec.version
            assert spec.family
            assert spec.description

    def test_describe_is_json_friendly(self):
        import json

        record = resolve_workload("DCGAN").describe()
        assert json.loads(json.dumps(record)) == record
        assert record["name"] == "DCGAN"
        assert record["family"] == "dcgan"

    def test_build_returns_fresh_instances_but_get_workload_caches(self):
        spec = resolve_workload("DCGAN")
        assert spec.build() is not spec.build()
        assert get_workload(spec) is get_workload("DCGAN")

    def test_workload_version_for_registry_and_adhoc_models(self):
        model = get_workload("DCGAN")
        assert workload_version_for(model) == "1"
        import dataclasses

        renamed = dataclasses.replace(model, name="not-in-registry")
        assert workload_version_for(renamed) == ""
        # a registry *name* on a structurally different model inherits nothing
        impostor = dataclasses.replace(get_workload("MAGAN"), name="DCGAN")
        assert workload_version_for(impostor) == ""


class TestCustomRegistration:
    def test_register_resolve_unregister_roundtrip(self):
        @register_workload("test-tiny-gan", family="custom", version="7",
                           description="a tiny custom GAN")
        def build_tiny():
            import dataclasses

            return dataclasses.replace(get_workload("DCGAN"), name="test-tiny-gan")

        try:
            assert workload_names()[-1] == "test-tiny-gan"  # order preserved
            model = get_workload("TEST-TINY-GAN")  # case-insensitive alias
            assert model.name == "test-tiny-gan"
            assert workload_version_for(model) == "7"
        finally:
            unregister_workload("test-tiny-gan")
        assert "test-tiny-gan" not in workload_names()
        with pytest.raises(WorkloadError):
            resolve_workload("test-tiny-gan")

    def test_duplicate_name_registration_raises(self):
        with pytest.raises(WorkloadError):
            register_workload("DCGAN")(lambda: None)
        # aliases collide too, whatever the spelling
        with pytest.raises(WorkloadError):
            register_workload("gp_gan")(lambda: None)

    def test_duplicate_family_registration_raises(self):
        with pytest.raises(WorkloadError):
            register_workload_family("dcgan", lambda args: None)

    def test_reserved_characters_in_names_are_rejected(self):
        """'@' and ',' names would be unresolvable / break --workloads lists."""
        for bad in ("custom@v2", "a,b", "  "):
            with pytest.raises(WorkloadError):
                register_workload(bad)(lambda: None)

    def test_reregistration_refreshes_family_default_spellings(self):
        """Memoized family spellings must not pin a stale (version) spec."""
        from repro.workloads.dcgan import build_dcgan

        assert resolve_workload("dcgan@64x64").version == "1"
        spec = unregister_workload("DCGAN")
        try:
            register_workload("DCGAN", family=spec.family, version="2")(build_dcgan)
            assert resolve_workload("DCGAN").version == "2"
            assert resolve_workload("dcgan@64x64").version == "2"
        finally:
            unregister_workload("DCGAN")
            register_workload(
                "DCGAN",
                family=spec.family,
                version=spec.version,
                description=spec.description,
            )(spec.builder)
            # registration order changed (DCGAN is now last); restore the
            # paper figure order the listing tests pin
            import repro.workloads.registry as registry_module

            ordered = sorted(registry_module._REGISTRY)
            registry_module._REGISTRY.update(
                {name: registry_module._REGISTRY.pop(name) for name in ordered}
            )
        assert resolve_workload("dcgan@64x64").version == spec.version

    def test_unregistering_a_family_instance_is_rejected(self):
        with pytest.raises(WorkloadError):
            unregister_workload("dcgan@32x32")


class TestWorkloadFamilies:
    def test_families_are_listed(self):
        assert {"dcgan", "artgan", "gpgan", "3dgan", "discogan", "magan",
                "synthetic"} <= set(workload_families())

    def test_family_default_point_is_the_builtin_spec(self):
        assert resolve_workload("dcgan@64x64") is resolve_workload("DCGAN")
        assert resolve_workload("artgan@128x128") is resolve_workload("ArtGAN")
        assert resolve_workload("3dgan@64x64x64") is resolve_workload("3D-GAN")

    def test_equivalent_spellings_share_one_spec_and_model(self):
        a = resolve_workload("dcgan@32x32")
        assert resolve_workload("dcgan@size=32") is a
        assert resolve_workload("DCGAN@32X32") is a
        assert get_workload("dcgan@size=32") is get_workload("dcgan@32x32")

    def test_resolved_models_carry_the_canonical_name(self):
        model = get_workload("dcgan@32x32")
        assert model.name == "dcgan@32x32"
        assert model.generator.output_shape.as_tuple() == (3, 32, 32)

    def test_scaled_resolutions_and_channels(self):
        assert get_workload("dcgan@128x128").generator.output_shape.spatial == (128, 128)
        assert get_workload("artgan@ch128").generator.total_macs() < (
            get_workload("ArtGAN").generator.total_macs()
        )
        assert get_workload("3dgan@32x32x32").generator.output_shape.as_tuple() == (
            1, 32, 32, 32
        )
        assert get_workload("discogan@128x128").generator.output_shape.spatial == (
            128, 128
        )
        assert get_workload("magan@ch256").generator.total_macs() < (
            get_workload("MAGAN").generator.total_macs()
        )

    def test_canonical_names_round_trip_through_the_grammar(self):
        """Every canonical name must resolve back to its own spec — including
        multi-knob points (no commas: they must survive --workloads lists)
        and all-default points of builtin-less families."""
        from repro.cli import parse_workload_list

        for spec_string in (
            "dcgan@32x32,ch512",
            "dcgan@size32ch512",
            "3dgan@32x32x32,ch256",
            "synthetic@d6c128k4s2z50",  # every knob at its default
        ):
            spec = resolve_workload(spec_string)
            assert "," not in spec.name
            assert resolve_workload(spec.name) is spec
            assert parse_workload_list(spec.name) == (spec.name,)

    def test_resolution_primes_the_model_cache(self):
        """The resolver's validation build becomes the cached instance."""
        import repro.workloads.registry as registry_module
        from repro.workloads.registry import clear_cache

        clear_cache()
        spec = resolve_workload("synthetic@d3c32z100")
        assert registry_module._MODELS.get(spec.name) is not None
        assert get_workload(spec) is registry_module._MODELS[spec.name]

    def test_family_instances_do_not_pollute_workload_names(self):
        get_workload("dcgan@32x32")
        assert "dcgan@32x32" not in workload_names()

    def test_unknown_family_raises_with_listing(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            resolve_workload("stylegan@64x64")
        message = str(excinfo.value)
        assert "synthetic" in message and "dcgan" in message

    def test_bad_family_args_raise(self):
        for spec in ("dcgan@", "dcgan@banana", "dcgan@64x32", "dcgan@warp=9",
                     "magan@64x64", "synthetic@d99", "synthetic@z200"):
            with pytest.raises(WorkloadError):
                resolve_workload(spec)

    def test_expand_family_defaults_and_explicit_variants(self):
        assert expand_workload_family("synthetic") == [
            "synthetic@d4c64", "synthetic@z100", "synthetic@d8c256",
        ]
        assert expand_workload_family("dcgan", ("32x32", "dcgan@128x128")) == [
            "dcgan@32x32", "dcgan@128x128",
        ]
        family = get_workload_family("synthetic")
        assert family.grammar.startswith("synthetic@")


class TestSyntheticFamily:
    def test_depth_and_channel_knobs(self):
        model = get_workload("synthetic@d8c256")
        assert isinstance(model, GANModel)
        assert model.generator.transposed_conv_layer_count() == 8
        assert model.generator.layers[1].target.channels == 256  # reshaped seed

    def test_zero_density_knob_is_monotonic(self):
        fractions = [
            get_workload(f"synthetic@d6c64z{z}").generator_tconv_inconsequential_fraction()
            for z in (0, 50, 100)
        ]
        assert fractions[0] < fractions[1] < fractions[2]

    def test_stride_knob_raises_zero_density(self):
        s2 = get_workload("synthetic@d4c64z100")
        s4 = get_workload("synthetic@d4c64s4z100")
        assert (
            s4.generator_tconv_inconsequential_fraction()
            > s2.generator_tconv_inconsequential_fraction()
        )

    def test_synthetic_simulates_end_to_end(self):
        from repro.runner import SimulationRunner, SimulationJob
        from repro.config import ArchitectureConfig, SimulationOptions

        job = SimulationJob(
            "synthetic@d4c64",
            "ganax",
            ArchitectureConfig.paper_default(),
            SimulationOptions(),
        )
        result = SimulationRunner().run_job(job)
        assert result.model_name == "synthetic@d4c64"
        assert result.generator.cycles > 0
