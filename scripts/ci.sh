#!/usr/bin/env sh
# Lightweight CI for the GANAX reproduction.
#
# Runs, from the repository root:
#   1. the tier-1 test suite (the gate every change must keep green), with
#      pytest's result cache disabled (-p no:cacheprovider) so runs are
#      byte-reproducible and leave no .pytest_cache behind;
#   2. the runner benchmarks, which enforce the warm-cache >= 5x speedup
#      contract, the serial/pooled/warm parity of the sweep results, the
#      six-GAN comparison-grid wall-clock budget, and the layer-memo >= 5x
#      speedup contract on a synthetic family sweep;
#   3. an accelerator-registry smoke: a Session runs one small workload
#      through every registered accelerator and fails if the registry is
#      thinner than expected or any registered model cannot complete it;
#   4. a DSE smoke: a deterministic exhaustive search over a tiny two-field
#      space must produce a verifiably non-dominated Pareto frontier and a
#      warm re-search must answer entirely from cache;
#   5. a workload-registry smoke: `list-workloads --json` must emit valid
#      JSON covering the six paper workloads and the families, and a
#      synthetic-family workload must run an end-to-end CLI compare;
#   6. a streaming smoke: `compare --progress --jsonl -` must stream one
#      valid JSON record per job to stdout and per-job progress lines to
#      stderr (the streaming benchmark in step 2 separately enforces that
#      streaming scheduling overhead stays within 10% of batch run_jobs);
#   7. a service smoke: `serve` hosts a shared runner, two concurrent
#      `remote-compare` clients submit the same grid, cross-client dedup
#      must leave exactly one simulation per distinct job, and SIGINT must
#      shut the server down cleanly with a complete event journal (the
#      service benchmark in step 2 separately enforces that the served
#      sweep stays within 1.5x of direct submit());
#   8. a telemetry smoke: `compare --trace --metrics` must write valid
#      Chrome trace-event JSON (one batch span, one job span per job) and a
#      metrics snapshot whose counters match the submitted grid (the
#      telemetry benchmark in step 2 separately enforces the overhead
#      budgets: disabled hooks <= 2%, full telemetry <= 10%);
#   9. a staticcheck smoke: `lint` over the package source must be clean,
#      `check` over the six paper workloads x {eyeriss, ganax} x both
#      skip_zeros modes must verify every compiled program with zero
#      findings, and a seeded single-µop corruption of a clean program
#      must be caught by the verifier (the mutation tests in
#      tests/test_staticcheck.py separately prove every catalog id fires);
#  10. a schedule smoke: `list-schedules --json` must cover the builtin
#      specs and families, `check --schedule <name>` over every registered
#      schedule must verify the full grid with zero findings, the tuned
#      `hoisted` schedule must emit measurably fewer µops than `default`
#      on a pinned layer, and `dse --fields num_pvs,schedule` must rank
#      (geometry x schedule) points with schedule-aware cache keys (the
#      schedule benchmarks in benchmarks/bench_schedule.py separately
#      enforce the same contracts under timing).
#
# Usage: scripts/ci.sh [extra pytest args for the tier-1 step]
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests =="
python -m pytest -x -q -p no:cacheprovider "$@"

echo "== runner + layer-memo + DSE + workload + streaming + service + telemetry + schedule benchmarks (parity + cache + overhead contracts) =="
python -m pytest benchmarks/bench_runner.py benchmarks/bench_layercache.py \
    benchmarks/bench_dse.py benchmarks/bench_workloads.py \
    benchmarks/bench_streaming.py benchmarks/bench_service.py \
    benchmarks/bench_telemetry.py benchmarks/bench_schedule.py -q \
    -p no:cacheprovider --benchmark-disable-gc

echo "== accelerator registry smoke (Session over every registered model) =="
python - <<'PY'
from repro import Session
from repro.accelerators import accelerator_names

names = accelerator_names()
assert len(names) >= 4, f"registry too thin: {names}"
session = Session(accelerators=names)
multi = session.compare("DCGAN")["DCGAN"]
for name in names:
    result = multi.result(name)
    assert result.total_cycles > 0, f"{name} produced no cycles"
    assert result.total_energy_pj > 0, f"{name} produced no energy"
print("session smoke OK:",
      ", ".join(f"{n}={multi.generator_speedup(n):.2f}x" for n in names))
PY

echo "== DSE smoke (exhaustive 2-field space, deterministic) =="
python - <<'PY'
from repro.dse import DesignSpaceExplorer, ExhaustiveSearch, dominates

explorer = DesignSpaceExplorer()
space = explorer.space(
    fields=("num_pvs", "pes_per_pv"),
    overrides={"num_pvs": (8, 16), "pes_per_pv": (8, 16)},
)
result = explorer.explore(space=space, strategy=ExhaustiveSearch())
assert len(result.evaluated) == 4, result.space
frontier = result.frontier
assert frontier.frontier, "empty Pareto frontier"
for a in frontier.frontier:  # no frontier point dominates another
    for b in frontier.frontier:
        assert not dominates(a, b, frontier.objectives), (a.label, b.label)
for p in frontier.dominated:  # every excluded point is genuinely dominated
    assert any(dominates(f, p, frontier.objectives) for f in frontier.frontier)

warm = explorer.explore(space=space, strategy=ExhaustiveSearch())
assert warm.cache_stats.misses == 0, warm.cache_stats.as_dict()
assert warm.frontier.summary() == frontier.summary()
print("dse smoke OK:",
      f"{len(frontier.frontier)}/{len(result.evaluated)} points on the "
      f"frontier; warm re-search hit rate "
      f"{100 * warm.cache_stats.hit_rate:.0f}%")
PY

echo "== workload registry smoke (list-workloads JSON + synthetic compare) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

python -m repro.cli list-workloads --json "$SMOKE_DIR/workloads.json" --quiet
python - "$SMOKE_DIR/workloads.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)
names = [entry["name"] for entry in payload["workloads"]]
assert len(names) >= 6, f"registry too thin: {names}"
families = {entry["name"]: entry for entry in payload["families"]}
assert "synthetic" in families, sorted(families)
assert all(entry["grammar"] and entry["version"] for entry in families.values())
print("list-workloads OK:", len(names), "workloads,", len(families), "families")
PY

python -m repro.cli compare \
    --workloads synthetic@d4c64,dcgan@64x64 \
    --accelerators eyeriss,ganax --json "$SMOKE_DIR/compare.json" --quiet
python - "$SMOKE_DIR/compare.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)["compare"]
assert set(payload["models"]) == {"synthetic@d4c64", "DCGAN"}, payload["models"].keys()
for name, summary in payload["models"].items():
    assert summary["ganax"]["speedup"] > 1.0, (name, summary)
print("synthetic compare OK:",
      ", ".join(f"{name}={summary['ganax']['speedup']:.2f}x"
                for name, summary in payload["models"].items()))
PY

echo "== streaming smoke (compare --progress --jsonl -) =="
python -m repro.cli compare \
    --workloads dcgan@64x64,MAGAN --accelerators eyeriss,ganax \
    --progress --jsonl - \
    > "$SMOKE_DIR/stream.jsonl" 2> "$SMOKE_DIR/stream.progress"
python - "$SMOKE_DIR/stream.jsonl" "$SMOKE_DIR/stream.progress" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    records = [json.loads(line) for line in handle if line.strip()]
assert len(records) == 4, f"expected 4 job records, got {len(records)}"
for record in records:
    assert record["event"] in ("completed", "cache-hit"), record
    assert record["provenance"] in ("executed", "cache", "deduplicated"), record
    assert record["generator_cycles"] > 0, record
assert {r["accelerator"] for r in records} == {"eyeriss", "ganax"}

with open(sys.argv[2], encoding="utf-8") as handle:
    progress = [line for line in handle if line.startswith("[")]
assert len(progress) == 4, f"expected 4 progress lines, got {len(progress)}"
assert any(line.startswith("[4/4]") for line in progress), progress
print("streaming smoke OK:", len(records), "JSONL records,",
      len(progress), "progress lines")
PY

echo "== service smoke (serve + two concurrent remote-compare clients) =="
python -m repro.cli serve --port 0 --port-file "$SMOKE_DIR/service.port" \
    --journal "$SMOKE_DIR/service.journal.jsonl" --quiet \
    2> "$SMOKE_DIR/service.log" &
SERVICE_PID=$!

for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/service.port" ] && break
    sleep 0.1
done
if ! [ -s "$SMOKE_DIR/service.port" ]; then
    echo "service smoke FAILED: server never published its port" >&2
    cat "$SMOKE_DIR/service.log" >&2
    exit 1
fi
SERVICE_PORT="$(cat "$SMOKE_DIR/service.port")"

python -m repro.cli remote-compare --port "$SERVICE_PORT" \
    --workloads dcgan@64x64,MAGAN --accelerators eyeriss,ganax \
    --client-id ci-a --jsonl "$SMOKE_DIR/client-a.jsonl" --quiet &
CLIENT_A=$!
python -m repro.cli remote-compare --port "$SERVICE_PORT" \
    --workloads dcgan@64x64,MAGAN --accelerators eyeriss,ganax \
    --client-id ci-b --jsonl "$SMOKE_DIR/client-b.jsonl" --quiet &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

kill -INT "$SERVICE_PID"
wait "$SERVICE_PID"

python - "$SMOKE_DIR/client-a.jsonl" "$SMOKE_DIR/client-b.jsonl" \
    "$SMOKE_DIR/service.journal.jsonl" <<'PY'
import json
import sys

streams = {}
for path in sys.argv[1:3]:
    with open(path, encoding="utf-8") as handle:
        streams[path] = [json.loads(line) for line in handle if line.strip()]

for path, records in streams.items():
    assert len(records) == 4, f"{path}: expected 4 records, got {len(records)}"
    for record in records:
        assert record["event"] in ("completed", "cache-hit"), record
        assert record["generator_cycles"] > 0, record

# Cross-client dedup: the grid has 4 distinct jobs, so across both clients
# exactly 4 simulations ran and the other 4 answers came from the cache.
events = [r["event"] for records in streams.values() for r in records]
assert events.count("completed") == 4, events
assert events.count("cache-hit") == 4, events

with open(sys.argv[3], encoding="utf-8") as handle:
    journal = [json.loads(line) for line in handle if line.strip()]
assert len(journal) == 8, f"expected 8 journal records, got {len(journal)}"
assert all("schema_version" in record for record in journal)
assert {(r["model"], r["accelerator"]) for r in journal} == {
    ("DCGAN", "eyeriss"), ("DCGAN", "ganax"),
    ("MAGAN", "eyeriss"), ("MAGAN", "ganax"),
}
print("service smoke OK: 2 clients x 4 jobs, 4 simulated + 4 dedup,",
      len(journal), "journal records, clean shutdown")
PY

echo "== telemetry smoke (compare --trace --metrics) =="
python -m repro.cli compare \
    --workloads dcgan@64x64,MAGAN --accelerators eyeriss,ganax \
    --trace "$SMOKE_DIR/trace.json" --metrics "$SMOKE_DIR/metrics.json" \
    --cache-stats --quiet > "$SMOKE_DIR/telemetry.out"
python - "$SMOKE_DIR/trace.json" "$SMOKE_DIR/metrics.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    trace = json.load(handle)
events = trace["traceEvents"]
assert trace["displayTimeUnit"] == "ms", trace.keys()
names = [event["name"] for event in events]
assert names.count("batch") == 1, names
assert names.count("job") == 4, names
for event in events:
    assert event["ph"] == "X", event
    assert event["ts"] >= 0 and event["dur"] >= 0, event
    assert "span_id" in event["args"], event
batch_id = next(e["args"]["span_id"] for e in events if e["name"] == "batch")
job_parents = {e["args"]["parent_id"] for e in events if e["name"] == "job"}
assert job_parents == {batch_id}, (batch_id, job_parents)

with open(sys.argv[2], encoding="utf-8") as handle:
    metrics = json.load(handle)
counters = metrics["counters"]
assert counters["runner.jobs.scheduled"] == 4, counters
terminal = sum(
    value for key, value in counters.items()
    if key in ("runner.jobs.completed", "runner.jobs.cache-hit")
)
assert terminal == 4, counters
assert metrics["histograms"]["runner.job.latency_seconds"]["count"] == 4
print("telemetry smoke OK:", len(events), "trace events,",
      len(counters), "counters")
PY

echo "== staticcheck smoke (lint + full verification grid + seeded mutation) =="
python -m repro.cli lint --quiet --json "$SMOKE_DIR/lint.json"
python - "$SMOKE_DIR/lint.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)["lint"]
assert payload["ok"], payload["findings"]
print("lint OK: package source is clean")
PY

python -m repro.cli check --accelerators eyeriss,ganax \
    --json "$SMOKE_DIR/check.json" --quiet
python - "$SMOKE_DIR/check.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)["check"]
assert payload["ok"], payload
assert payload["findings"] == 0, payload
# six workloads x two accelerators x two skip_zeros modes, every
# compilable layer: the grid must not silently shrink.
assert payload["cells"] >= 200, payload["cells"]
assert payload["programs"] >= payload["cells"], payload
print("check OK:", payload["programs"], "programs across",
      payload["cells"], "cells, zero findings")
PY

python - <<'PY'
from repro.staticcheck import MachineModel, Severity, verify_program
from repro.workloads.registry import get_workload
from repro.core.compiler import compile_layer_programs
from repro.isa.uops import AccessCfg, ConfigRegister

model = get_workload("dcgan")
binding = next(b for b in model.generator.bindings if b.is_transposed)
program = compile_layer_programs(
    binding, num_pvs=16, pes_per_pv=16, skip_zeros=True,
    max_waves=1, max_columns=4,
)[0]
machine = MachineModel.from_config(num_pvs=16, pes_per_pv=16)
assert not verify_program(program, machine), "clean program flagged"

# Seed a single-µop corruption: point the first access.cfg at a PV the
# program never declared.  The verifier must catch it.
corrupt = list(program.global_uops)
at, uop = next(
    (i, u) for i, u in enumerate(corrupt) if isinstance(u, AccessCfg)
)
corrupt[at] = AccessCfg(
    pv_index=31, generator=uop.generator,
    register=uop.register, immediate=uop.immediate,
)
object.__setattr__(program, "global_uops", tuple(corrupt))
findings = verify_program(program, machine)
assert findings, "seeded corruption went undetected"
assert any(f.severity is Severity.ERROR for f in findings), findings
print("mutation smoke OK:", len(findings), "finding(s) on the seeded",
      "corruption, e.g.", findings[0].check_id)
PY

echo "== schedule smoke (list-schedules + per-schedule check grid + tuned win + dse axis) =="
python -m repro.cli list-schedules --json "$SMOKE_DIR/schedules.json" --quiet
python - "$SMOKE_DIR/schedules.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)
names = [entry["name"] for entry in payload["schedules"]]
assert "default" in names and "hoisted" in names, names
families = [entry["family"] for entry in payload["families"]]
assert "colmajor" in families and "unroll" in families, families
for entry in payload["schedules"]:
    assert entry["fingerprint"] and entry["knobs"], entry
print("list-schedules OK:", len(names), "schedules,", len(families), "families")
PY

for SCHEDULE in $(python - "$SMOKE_DIR/schedules.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)
print(" ".join(entry["name"] for entry in payload["schedules"]))
PY
); do
    python -m repro.cli check --schedule "$SCHEDULE" \
        --json "$SMOKE_DIR/check-schedule.json" --quiet
    python - "$SMOKE_DIR/check-schedule.json" "$SCHEDULE" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)["check"]
assert payload["ok"], (sys.argv[2], payload)
assert payload["findings"] == 0, (sys.argv[2], payload)
assert payload["programs"] > 0, (sys.argv[2], payload)
print(f"check --schedule {sys.argv[2]} OK:",
      payload["programs"], "programs, zero findings")
PY
done

python - <<'PY'
from repro.core.compiler import compile_layer_programs
from repro.workloads.registry import get_workload

model = get_workload("dcgan")
binding = next(b for b in model.generator.bindings if b.is_transposed)
counts = {}
for schedule in ("default", "hoisted"):
    programs = compile_layer_programs(
        binding, num_pvs=16, pes_per_pv=16, skip_zeros=True,
        max_waves=1, schedule=schedule,
    )
    counts[schedule] = sum(len(p.global_uops) for p in programs)
assert counts["hoisted"] < counts["default"] * 0.9, counts
print("tuned schedule OK: hoisted emits",
      f"{counts['hoisted']}/{counts['default']} uops",
      f"({1 - counts['hoisted'] / counts['default']:.0%} fewer) on dcgan/{binding.name}")
PY

python -m repro.cli dse --workloads magan --fields num_pvs,schedule \
    --json "$SMOKE_DIR/dse-schedule.json" --cache-stats --quiet \
    > "$SMOKE_DIR/dse-schedule.out"
python - "$SMOKE_DIR/dse-schedule.json" <<'PY'
import json
import sys

with open(sys.argv[1], encoding="utf-8") as handle:
    payload = json.load(handle)["dse"]
points = payload["frontier"] + payload["dominated"]
assert len(points) == payload["evaluations"], payload["evaluations"]
schedules = {point["point"]["schedule"] for point in points}
assert len(schedules) >= 2, schedules
assert "default" in schedules, schedules
# the schedule axis must move the objectives at fixed geometry
by_geometry = {}
for point in points:
    by_geometry.setdefault(point["point"]["num_pvs"], set()).add(
        json.dumps(point["metrics"], sort_keys=True)
    )
assert any(len(metrics) > 1 for metrics in by_geometry.values()), by_geometry
print("dse schedule axis OK:", len(points), "points across",
      len(schedules), "schedules,", len(payload["frontier"]), "on the frontier")
PY

echo "CI OK"
