#!/usr/bin/env sh
# Lightweight CI for the GANAX reproduction.
#
# Runs, from the repository root:
#   1. the tier-1 test suite (the gate every change must keep green), with
#      pytest's result cache disabled (-p no:cacheprovider) so runs are
#      byte-reproducible and leave no .pytest_cache behind;
#   2. the runner benchmark, which enforces the warm-cache >= 5x speedup
#      contract and the serial/pooled/warm parity of the sweep results;
#   3. an accelerator-registry smoke: a Session runs one small workload
#      through every registered accelerator and fails if the registry is
#      thinner than expected or any registered model cannot complete it.
#
# Usage: scripts/ci.sh [extra pytest args for the tier-1 step]
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests =="
python -m pytest -x -q -p no:cacheprovider "$@"

echo "== runner benchmark (parity + warm-cache contract) =="
python -m pytest benchmarks/bench_runner.py -q -p no:cacheprovider \
    --benchmark-disable-gc

echo "== accelerator registry smoke (Session over every registered model) =="
python - <<'PY'
from repro import Session
from repro.accelerators import accelerator_names

names = accelerator_names()
assert len(names) >= 4, f"registry too thin: {names}"
session = Session(accelerators=names)
multi = session.compare("DCGAN")["DCGAN"]
for name in names:
    result = multi.result(name)
    assert result.total_cycles > 0, f"{name} produced no cycles"
    assert result.total_energy_pj > 0, f"{name} produced no energy"
print("session smoke OK:",
      ", ".join(f"{n}={multi.generator_speedup(n):.2f}x" for n in names))
PY

echo "CI OK"
