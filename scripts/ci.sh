#!/usr/bin/env sh
# Lightweight CI for the GANAX reproduction.
#
# Runs, from the repository root:
#   1. the tier-1 test suite (the gate every change must keep green), with
#      pytest's result cache disabled (-p no:cacheprovider) so runs are
#      byte-reproducible and leave no .pytest_cache behind;
#   2. the runner benchmark, which enforces the warm-cache >= 5x speedup
#      contract and the serial/pooled/warm parity of the sweep results.
#
# Usage: scripts/ci.sh [extra pytest args for the tier-1 step]
set -eu

cd "$(dirname "$0")/.."

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== tier-1 tests =="
python -m pytest -x -q -p no:cacheprovider "$@"

echo "== runner benchmark (parity + warm-cache contract) =="
python -m pytest benchmarks/bench_runner.py -q -p no:cacheprovider \
    --benchmark-disable-gc

echo "CI OK"
