"""Benchmark of the design-space exploration engine's cache behaviour.

Runs the same exhaustive search (a PE-geometry grid, all six GANs, GANAX vs
EYERISS at every point) twice on one runner and compares wall time:

* **cold** — fresh runner, empty cache: every candidate evaluation simulates;
* **warm** — the same runner again: the search replays the identical job set
  and must answer entirely from the content-addressed cache.

The warm re-search must be at least 5x faster than the cold search — the
same contract `bench_runner.py` enforces for sweeps, extended to the DSE
layer — and must report **zero misses**: a deterministic strategy plus
content-hash keys means a repeated search never re-simulates anything.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.dse.engine import DesignSpaceExplorer
from repro.dse.strategies import ExhaustiveSearch
from repro.runner import SerialBackend, SimulationRunner

#: PE-array geometry grid explored by the benchmark search.
GRID = {"num_pvs": (8, 16, 32), "pes_per_pv": (8, 16)}

#: Required advantage of the warm re-search over the cold search.
MIN_WARM_SPEEDUP = 5.0


def run_search(explorer: DesignSpaceExplorer):
    space = explorer.space(fields=tuple(GRID), overrides=GRID)
    return explorer.explore(space=space, strategy=ExhaustiveSearch())


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_dse_warm_cache_speedup(benchmark):
    """Re-searching a warm cache must be >= 5x faster with 100% hits."""
    runner = SimulationRunner(backend=SerialBackend())
    explorer = DesignSpaceExplorer(runner=runner)

    cold_result, cold_seconds = benchmark.pedantic(
        lambda: timed(lambda: run_search(explorer)),
        iterations=1,
        rounds=1,
    )
    warm_result, warm_seconds = timed(lambda: run_search(explorer))

    # The two searches saw the same space and produced identical frontiers.
    assert [p.label for p in cold_result.evaluated] == [
        p.label for p in warm_result.evaluated
    ]
    assert cold_result.frontier.summary() == warm_result.frontier.summary()

    # The warm search answered everything from cache.
    assert cold_result.cache_stats.misses == cold_result.cache_stats.lookups
    assert warm_result.cache_stats.misses == 0
    assert warm_result.cache_stats.hit_rate == 1.0

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm re-search only {warm_speedup:.1f}x faster than cold; "
        f"expected >= {MIN_WARM_SPEEDUP:.0f}x"
    )

    points = len(cold_result.evaluated)
    emit(
        format_table(
            ["Search", "Wall time (ms)", "vs cold", "Cache hit rate"],
            [
                ["cold exhaustive", 1e3 * cold_seconds, 1.0,
                 cold_result.cache_stats.hit_rate],
                ["warm exhaustive", 1e3 * warm_seconds, warm_speedup,
                 warm_result.cache_stats.hit_rate],
            ],
            title=(
                f"DSE modes: {points}-point geometry grid "
                "(6 GANs, ganax vs eyeriss)"
            ),
            float_format="{:.2f}",
        )
    )
