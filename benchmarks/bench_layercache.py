"""Benchmark of the layer-grain memo store under a synthetic family sweep.

Twelve synthetic GANs that differ only in their latent head share their whole
transposed-convolution / convolution stack, so the layer memo turns a sweep
over the family into a handful of real simulations plus cheap per-layer
lookups.  The benchmark runs the same ``execute_job`` loop twice — memo
disabled (cold) and memo populated (warm) — and enforces the layer memo's
reason to exist: the warm sweep must be at least 5x faster than the cold
sweep, with byte-identical results.

Timing is the best of several rounds for both modes, so the assertion is
robust against scheduler noise rather than a single-sample coin flip.
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.analysis.report import format_table
from repro.config import ArchitectureConfig, SimulationOptions
from repro.runner import SimulationJob, configure_layer_memo, execute_job, get_layer_memo
from repro.runner import cache as cache_module
from repro.workloads.synthetic import build_synthetic

#: Synthetic family: identical conv/tconv stacks, distinct latent heads.
FAMILY_SIZE = 12

#: Required advantage of the memo-warm sweep over the memo-disabled sweep.
MIN_MEMO_SPEEDUP = 5.0

#: Timing rounds per mode; the best round is compared.
ROUNDS = 3


def _family_jobs():
    config = ArchitectureConfig.paper_default()
    options = SimulationOptions()
    jobs = []
    for index in range(FAMILY_SIZE):
        model = build_synthetic(depth=12, base_channels=256, latent_dim=100 + index)
        jobs.extend(SimulationJob.comparison_pair(model, config, options))
    return jobs


def _sweep(jobs):
    return [execute_job(job) for job in jobs]


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_layer_memo_family_sweep(benchmark):
    """Memo-warm family sweep must beat the memo-disabled sweep by >= 5x."""
    # Snapshot the process-global memo configuration so the benchmark leaves
    # other tests in the state it found them.
    saved_memo = cache_module._layer_memo
    saved_configured = cache_module._layer_memo_configured
    saved_env = {
        name: os.environ.get(name)
        for name in (cache_module.LAYER_MEMO_ENV, cache_module.LAYER_MEMO_DIR_ENV)
    }
    try:
        jobs = _family_jobs()

        # Warm the shape-grain lru caches (fingerprints, schedule summaries)
        # once so both timed modes measure the memo, not first-touch hashing.
        configure_layer_memo(enabled=False)
        _sweep(jobs)

        cold_results, cold_seconds = benchmark.pedantic(
            lambda: _best_of(lambda: _sweep(jobs)),
            iterations=1,
            rounds=1,
        )

        memo = configure_layer_memo()
        _sweep(jobs)  # populate the memo
        memo.stats.reset()
        warm_results, warm_seconds = _best_of(lambda: _sweep(jobs))

        # The memo must not change a single result.
        assert warm_results == cold_results

        # The whole family resolved from per-layer hits: every lookup in the
        # timed rounds hit, and the resident set is far smaller than the
        # number of simulated layers.
        stats = get_layer_memo().stats
        assert stats.misses == 0
        assert stats.hits > 0
        assert len(memo) < stats.hits

        memo_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
        assert memo_speedup >= MIN_MEMO_SPEEDUP, (
            f"memo-warm family sweep only {memo_speedup:.2f}x faster than the "
            f"memo-disabled sweep; expected >= {MIN_MEMO_SPEEDUP:.0f}x"
        )

        emit(
            format_table(
                ["Sweep mode", "Wall time (ms)", "vs memo disabled"],
                [
                    ["memo disabled", 1e3 * cold_seconds, 1.0],
                    ["memo warm", 1e3 * warm_seconds, memo_speedup],
                ],
                title=(
                    f"Layer memo: {len(jobs)}-job synthetic family sweep "
                    f"({FAMILY_SIZE} models, {len(memo)} resident layer entries, "
                    f"{stats.hit_rate * 100:.1f}% hit rate)"
                ),
                float_format="{:.2f}",
            )
        )
    finally:
        with cache_module._layer_memo_lock:
            cache_module._layer_memo = saved_memo
            cache_module._layer_memo_configured = saved_configured
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
