"""Benchmark / regeneration of Figure 9: runtime and energy breakdowns."""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments import figure9
from repro.experiments.paper_data import MODEL_ORDER


def test_figure9_runtime_and_energy_breakdown(benchmark, context):
    """Regenerate Figure 9 and check the normalisation invariants."""
    result = benchmark(figure9.run, context)
    for model in MODEL_ORDER:
        runtime = result.data["runtime"][model]
        energy = result.data["energy"][model]
        # EYERISS bars are normalised to themselves.
        assert sum(runtime["eyeriss"].values()) == pytest.approx(1.0)
        assert sum(energy["eyeriss"].values()) == pytest.approx(1.0)
        # GANAX shrinks the generative share but not the discriminative one.
        assert sum(runtime["ganax"].values()) < 1.0
        assert runtime["ganax"]["discriminative"] == pytest.approx(
            runtime["eyeriss"]["discriminative"], rel=1e-6
        )
        assert runtime["ganax"]["generative"] < runtime["eyeriss"]["generative"]
    emit(result.report)
