"""Benchmarks of the analytical simulators themselves.

These measure how long a full-GAN simulation takes on each accelerator model —
useful for keeping the experiment harness fast as the library grows — and
print the headline per-model numbers (the Figure 8 inputs).
"""

from __future__ import annotations

import pytest
from conftest import emit

from repro.analysis.report import format_table
from repro.baseline.simulator import EyerissSimulator
from repro.core.simulator import GanaxSimulator
from repro.workloads import get_workload

_MODELS = ("3D-GAN", "DCGAN", "MAGAN")


@pytest.mark.parametrize("name", _MODELS)
def test_eyeriss_simulation_speed(benchmark, name):
    """Time a full EYERISS simulation of one GAN."""
    model = get_workload(name)
    simulator = EyerissSimulator()
    result = benchmark(simulator.simulate_gan, model)
    assert result.total_cycles > 0


@pytest.mark.parametrize("name", _MODELS)
def test_ganax_simulation_speed(benchmark, name):
    """Time a full GANAX simulation of one GAN."""
    model = get_workload(name)
    simulator = GanaxSimulator()
    result = benchmark(simulator.simulate_gan, model)
    assert result.total_cycles > 0


def test_per_model_summary(benchmark):
    """Simulate every model once on both accelerators and print a summary."""

    def run():
        rows = []
        for name in _MODELS:
            model = get_workload(name)
            eyeriss = EyerissSimulator().simulate_gan(model)
            ganax = GanaxSimulator().simulate_gan(model)
            rows.append(
                [
                    name,
                    eyeriss.generator.cycles,
                    ganax.generator.cycles,
                    eyeriss.generator.cycles / ganax.generator.cycles,
                ]
            )
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    assert all(row[3] > 1.0 for row in rows)
    emit(
        format_table(
            ["Model", "EYERISS cycles", "GANAX cycles", "Speedup"],
            rows,
            title="Generator cycles per accelerator",
            float_format="{:.2f}",
        )
    )
