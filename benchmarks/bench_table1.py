"""Benchmark / regeneration of Table I: evaluated GAN models and layer counts."""

from __future__ import annotations

from conftest import emit

from repro.experiments import table1


def test_table1_layer_counts(benchmark, context):
    """Regenerate Table I and check the counts match the paper exactly."""
    result = benchmark(table1.run, context)
    assert result.data["layer_counts"] == result.paper_reference["layer_counts"]
    emit(result.report)
