"""Benchmark / regeneration of Figure 10: per-unit energy breakdown."""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments import figure10
from repro.experiments.paper_data import MODEL_ORDER


def test_figure10_unit_energy_breakdown(benchmark, context):
    """Regenerate Figure 10 and check GANAX reduces every component."""
    result = benchmark(figure10.run, context)
    for model in MODEL_ORDER:
        breakdown = result.data["unit_energy"][model]
        assert sum(breakdown["eyeriss"].values()) == pytest.approx(1.0)
        for component, value in breakdown["eyeriss"].items():
            assert breakdown["ganax"][component] <= value * 1.001
    emit(result.report)
