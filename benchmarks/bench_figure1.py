"""Benchmark / regeneration of Figure 1: inconsequential-operation fractions."""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure1
from repro.experiments.paper_data import MODEL_ORDER


def test_figure1_inconsequential_fractions(benchmark, context):
    """Regenerate Figure 1 and time the structural zero analysis."""
    result = benchmark(figure1.run, context)
    fractions = result.data["inconsequential_fraction"]
    # The paper's headline: more than 60% of TConv multiply-adds are
    # inconsequential on average, with 3D-GAN the highest.
    assert fractions["Average"] > 0.60
    per_model = {k: v for k, v in fractions.items() if k in MODEL_ORDER}
    assert max(per_model, key=per_model.get) == "3D-GAN"
    emit(result.report)
