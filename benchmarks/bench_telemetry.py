"""Benchmark of the telemetry layer's overhead budgets.

Runs the six-GAN (eyeriss, ganax) comparison grid on fresh serial runners in
two telemetry states and enforces the observability contract.  Both caching
tiers are disabled for the timed grids: a cache-served replay finishes in a
couple of milliseconds, which is a degenerate denominator — the budgets are
fractions of *real simulation work*, the regime where overhead matters.

* **disabled hooks are near-free** — with metrics and tracing both off,
  every instrumented call site degrades to one ``is None`` check.  A
  micro-benchmark times a generous over-estimate of the grid's hook
  crossings through the real disabled path and requires the total to stay
  under **2%** of the dark grid's wall time;
* **full telemetry is cheap** — with metrics *and* tracing on (the most
  expensive configuration: every job allocates spans, every layer-memo
  lookup updates counters), the grid must stay within **10%** of the dark
  grid's wall time, best-of-N both sides;
* **telemetry never perturbs the physics** — the full-telemetry grid's
  results equal the dark grid's results value-for-value.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.runner import (
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    configure_layer_memo,
)
from repro.telemetry import (
    configure_metrics,
    configure_tracing,
    get_metrics,
    get_tracer,
)
from repro.workloads.registry import all_workloads

#: Maximum tolerated full-telemetry wall time, as a fraction of dark time.
MAX_FULL_TELEMETRY_OVERHEAD = 1.10

#: Maximum tolerated disabled-hook cost, as a fraction of dark time.
MAX_DISABLED_OVERHEAD = 0.02

#: Hook crossings budgeted per grid run in the disabled micro-benchmark.
#: With both caching tiers off the grid crosses instrumented sites ~100
#: times (per-job events, span guards and dispatch hooks for twelve jobs);
#: 300 is a 3x over-estimate.
DISABLED_HOOK_CALLS = 300

#: Timing repetitions; the best run is compared to shave scheduler noise.
ROUNDS = 3


def grid_jobs():
    return [
        job
        for model in all_workloads()
        for job in SimulationJob.comparison_pair(model)
    ]


def timed_best(fn, rounds=ROUNDS):
    best_result, best_seconds = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_result, best_seconds = result, seconds
    return best_result, best_seconds


def run_grid():
    # use_cache=False: every round simulates for real instead of replaying
    # the first round's results out of the content-addressed cache.
    runner = SimulationRunner(backend=SerialBackend(), use_cache=False)
    try:
        return runner.run_jobs(grid_jobs())
    finally:
        runner.close()


def disabled_hook_storm(calls=DISABLED_HOOK_CALLS):
    """The guard an instrumented call site runs when telemetry is off.

    Each site checks one registry (metrics *or* tracing, not both), so one
    iteration here is one real crossing; the tracer guard is asserted once
    outside the loop.
    """
    if get_tracer() is not None:  # pragma: no cover - telemetry is off
        raise AssertionError("tracing unexpectedly enabled")
    for _ in range(calls):
        if get_metrics() is not None:  # pragma: no cover - telemetry is off
            raise AssertionError("metrics unexpectedly enabled")


def test_telemetry_overhead_within_budget(benchmark):
    """Disabled hooks <= 2% of dark time; full telemetry <= 10%."""
    try:
        configure_metrics(enabled=False)
        configure_tracing(enabled=False)
        configure_layer_memo(enabled=False)
        run_grid()  # warm the shape-grain lru caches before any timing
        dark_results, dark_seconds = benchmark.pedantic(
            lambda: timed_best(run_grid), iterations=1, rounds=1
        )

        _, disabled_seconds = timed_best(disabled_hook_storm)
        disabled_fraction = (
            disabled_seconds / dark_seconds if dark_seconds > 0 else 0.0
        )
        assert disabled_fraction <= MAX_DISABLED_OVERHEAD, (
            f"{DISABLED_HOOK_CALLS} disabled hook crossings cost "
            f"{100 * disabled_fraction:.2f}% of the dark grid; budget is "
            f"{100 * MAX_DISABLED_OVERHEAD:.0f}%"
        )

        configure_metrics()
        tracer = configure_tracing()
        full_results, full_seconds = timed_best(run_grid)

        # Telemetry observes the simulation; it must not change it.
        assert full_results == dark_results
        # ...and it really was on: spans and counters were recorded.
        assert tracer.finished_spans()
        registry = get_metrics()
        assert registry.counter_value("runner.jobs.scheduled") > 0

        overhead = full_seconds / dark_seconds if dark_seconds > 0 else 1.0
        assert overhead <= MAX_FULL_TELEMETRY_OVERHEAD, (
            f"full telemetry took {overhead:.2f}x the dark grid; "
            f"budget is {MAX_FULL_TELEMETRY_OVERHEAD:.2f}x"
        )

        jobs = len(grid_jobs())
        emit(
            format_table(
                ["Configuration", "Wall time (ms)", "vs telemetry off"],
                [
                    ["telemetry off", 1e3 * dark_seconds, 1.0],
                    [
                        f"disabled hooks x{DISABLED_HOOK_CALLS}",
                        1e3 * disabled_seconds,
                        disabled_fraction,
                    ],
                    ["metrics + tracing", 1e3 * full_seconds, overhead],
                ],
                title=f"Telemetry overhead: {jobs}-job six-GAN grid (serial)",
                float_format="{:.3f}",
            )
        )
    finally:
        # leave the process in the default state for whatever runs next
        configure_metrics()
        configure_tracing(enabled=False)
        configure_layer_memo()
