"""Benchmark / regeneration of Figure 11: PE utilization."""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure11
from repro.experiments.paper_data import MODEL_ORDER


def test_figure11_pe_utilization(benchmark, context):
    """Regenerate Figure 11: GANAX reaches ~90%, far above the baseline."""
    result = benchmark(figure11.run, context)
    utilization = result.data["pe_utilization"]
    for model in MODEL_ORDER:
        assert utilization["ganax"][model] > 0.75
        assert utilization["ganax"][model] > utilization["eyeriss"][model]
    assert utilization["ganax"]["Average"] > 0.80
    emit(result.report)
