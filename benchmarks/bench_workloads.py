"""Benchmark of the workload registry's model caching.

Builds a representative spec set — the six paper workloads plus family
instances from every axis the registry opens (scaled resolutions, channel
widths, synthetic stress points) — twice:

* **cold** — after ``clear_cache()``, every ``get_workload`` call constructs
  the model (shape-chain resolution over the full layer stack);
* **warm** — the same lookups again, answered from the registry's model
  cache.

The warm pass must be at least 10x faster than the cold pass: sweeps,
sessions and the DSE engine resolve workload specs on every job they
construct, so a cache miss on a hot path would multiply into whole-suite
slowdowns.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.workloads.registry import clear_cache, get_workload, workload_names

#: Family spec strings exercised alongside the six paper workloads.
FAMILY_SPECS = (
    "dcgan@32x32",
    "dcgan@128x128",
    "artgan@ch128",
    "gpgan@32x32",
    "3dgan@32x32x32",
    "discogan@128x128",
    "magan@ch256",
    "synthetic@d4c64",
    "synthetic@d8c256",
    "synthetic@d6c128z100",
)

#: Required advantage of warm registry lookups over cold builds.
MIN_WARM_SPEEDUP = 10.0

#: Lookup rounds per timing pass (cache hits are too fast to time once).
ROUNDS = 50


def lookup_all(specs) -> None:
    for spec in specs:
        get_workload(spec)


def test_workload_registry_cache(benchmark):
    """Warm get_workload lookups must beat cold builds by >= 10x."""
    specs = (*workload_names(), *FAMILY_SPECS)

    def cold_pass():
        clear_cache()
        start = time.perf_counter()
        lookup_all(specs)
        return time.perf_counter() - start

    cold_seconds = benchmark.pedantic(cold_pass, iterations=1, rounds=1)

    start = time.perf_counter()
    for _ in range(ROUNDS):
        lookup_all(specs)
    warm_seconds = (time.perf_counter() - start) / ROUNDS

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm registry lookups only {warm_speedup:.1f}x faster than cold "
        f"builds; expected >= {MIN_WARM_SPEEDUP:.0f}x"
    )

    # The cache must return the very same instances on repeat lookups.
    assert all(get_workload(spec) is get_workload(spec) for spec in specs)

    emit(
        format_table(
            ["Pass", "Wall time (ms)", "vs cold"],
            [
                ["cold build", 1e3 * cold_seconds, 1.0],
                ["warm lookup", 1e3 * warm_seconds, warm_speedup],
            ],
            title=(
                f"Workload registry: {len(specs)} specs "
                f"({len(workload_names())} paper + {len(FAMILY_SPECS)} family)"
            ),
            float_format="{:.3f}",
        )
    )
