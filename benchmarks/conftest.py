"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
rendered report is printed (run pytest with ``-s`` to see it inline) so the
benchmark run doubles as the textual regeneration of the evaluation section;
the same reports are available via ``repro-experiments`` and
``examples/paper_evaluation.py``.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    """One shared experiment context (models + simulator runs) per session."""
    return ExperimentContext()


def emit(report: str) -> None:
    """Print a rendered report so `pytest -s` shows the regenerated artefact."""
    print()
    print(report)
