"""Benchmark of the simulation service's overhead vs direct submit().

Runs a design-space sweep — the six-GAN (eyeriss, ganax) comparison grid
at four PV counts, 48 distinct jobs — two ways and compares wall time:

* **direct** — build the jobs and drive ``SimulationRunner.submit()`` +
  ``as_completed()`` in-process (the PR-5 streaming path);
* **served** — submit the same grid as wire job specs through a live
  :class:`~repro.service.SimulationServer` over localhost TCP, streaming
  the event records back through :class:`~repro.service.Client`.

The service buys multi-client sharing, admission control and durability;
it must not tax a single sweep much for it.  The contract enforced here:
the served grid stays within **1.5x** of the direct path's wall time.
Both paths run fully cold — fresh runner, cold job-level result cache,
and the process-global layer memo disabled for the timed region — so each
round performs the identical full simulation and the ratio isolates
protocol + scheduling overhead.  Both sides are measured best-of-N to
shave scheduler noise.  A second served submission against a warm server
must then resolve entirely from cache (the multi-client dedup story),
byte-agreeing with the direct path's numbers.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.runner import SerialBackend, SimulationRunner, configure_layer_memo
from repro.service import Client, SimulationServer, grid_specs

#: Maximum tolerated served wall time, as a fraction of the direct path.
MAX_SERVED_OVERHEAD = 1.5

#: Timing repetitions; the best run is compared to shave scheduler noise.
ROUNDS = 3

SIX_GANS = ("3D-GAN", "ArtGAN", "DCGAN", "DiscoGAN", "GP-GAN", "MAGAN")

#: PV counts swept per (model, accelerator) pair: 4 x 12 = 48 distinct jobs.
PV_SWEEP = (4, 8, 16, 32)


def grid():
    return [
        spec
        for num_pvs in PV_SWEEP
        for spec in grid_specs(
            SIX_GANS, ["eyeriss", "ganax"], config={"num_pvs": num_pvs}
        )
    ]


def run_direct():
    """The in-process streaming path on a fresh (cold result cache) runner."""
    with SimulationRunner(backend=SerialBackend()) as runner:
        jobs = [spec.build() for spec in grid()]
        handle = runner.submit(jobs)
        completions = list(handle.as_completed())
        return {
            (c.job.model_name, c.job.accelerator, c.job.config.num_pvs):
                c.result.generator.cycles
            for c in completions
        }


def timed_best(fn, rounds=ROUNDS):
    best_result, best_seconds = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_result, best_seconds = result, seconds
    return best_result, best_seconds


def test_served_grid_overhead_within_budget(benchmark):
    """The served six-GAN grid must stay within 1.5x of direct submit()."""

    specs = grid()

    def run_served():
        # a fresh runner per round keeps the job-level cache cold; server
        # and connection setup stay outside the timed region below
        with SimulationRunner(backend=SerialBackend()) as runner:
            with SimulationServer(port=0, runner=runner) as server:
                with Client(port=server.port) as client:
                    start = time.perf_counter()
                    records = client.run(specs)
                    seconds = time.perf_counter() - start
        cycles = {
            (
                r["model"],
                r["accelerator"],
                specs[r["index"]].config["num_pvs"],
            ): r["generator_cycles"]
            for r in records
        }
        return cycles, seconds

    # Disable the process-global layer memo so every round — direct and
    # served alike — performs the full cold-grid simulation.
    configure_layer_memo(enabled=False)
    try:
        direct_cycles, direct_seconds = benchmark.pedantic(
            lambda: timed_best(run_direct), iterations=1, rounds=1
        )

        served_seconds = float("inf")
        served_cycles = None
        for _ in range(ROUNDS):
            cycles, seconds = run_served()
            if seconds < served_seconds:
                served_cycles, served_seconds = cycles, seconds
    finally:
        configure_layer_memo()

    # The wire records carry the same numbers the direct path computed.
    assert served_cycles == direct_cycles

    overhead = served_seconds / direct_seconds if direct_seconds > 0 else 1.0
    assert overhead <= MAX_SERVED_OVERHEAD, (
        f"served grid took {overhead:.2f}x the direct path; "
        f"budget is {MAX_SERVED_OVERHEAD:.2f}x"
    )

    # Warm server: a duplicate sweep resolves entirely from cache.
    with SimulationRunner(backend=SerialBackend()) as runner:
        with SimulationServer(port=0, runner=runner) as server:
            with Client(port=server.port) as first:
                first.run(grid())
            with Client(port=server.port) as second:
                second_records = second.run(grid())
                warm_counts = second.last_counts
    assert all(r["event"] == "cache-hit" for r in second_records)
    assert warm_counts["cache-hit"] == len(grid())
    assert warm_counts["completed"] == 0

    jobs = len(grid())
    emit(
        format_table(
            ["Path", "Wall time (ms)", "vs direct"],
            [
                ["direct submit()", 1e3 * direct_seconds, 1.0],
                ["served (TCP + JSONL)", 1e3 * served_seconds, overhead],
            ],
            title=f"Service overhead: {jobs}-job six-GAN PV sweep (serial backend)",
            float_format="{:.2f}",
        )
    )
