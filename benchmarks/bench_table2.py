"""Benchmark / regeneration of Table II: energy costs of the hardware units."""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments import table2


def test_table2_energy_costs(benchmark, context):
    """Regenerate Table II from the configured energy model."""
    result = benchmark(table2.run, context)
    measured = result.data["energy_table"]
    reference = result.paper_reference["energy_table"]
    for name, values in reference.items():
        assert measured[name]["pj_per_bit"] == pytest.approx(values["pj_per_bit"])
        assert measured[name]["relative"] == pytest.approx(values["relative"], rel=1e-6)
    emit(result.report)
