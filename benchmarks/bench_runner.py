"""Benchmark of the simulation runner's execution modes.

Runs the same ablation-sized parameter sweep (all six GANs x a DRAM-bandwidth
sweep, both accelerators) three ways and compares wall time:

* **cold serial** — fresh runner, serial backend, empty cache;
* **pooled** — fresh runner, process-pool backend, empty cache (worker
  start-up is included, so on small grids or few cores this can be slower
  than serial — the mode exists for large grids, the benchmark just reports);
* **warm cache** — the serial runner again, cache already populated.

The warm-cache path must be at least 5x faster than the cold serial path —
that is the runner subsystem's reason to exist — and all three must produce
identical sweep points (the same parity the unit tests assert, checked here
on the benchmark workload itself).
"""

from __future__ import annotations

import os
import time

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.sweep import ParameterSweep
from repro.runner import (
    ProcessPoolBackend,
    SerialBackend,
    SimulationJob,
    SimulationRunner,
    execute_job,
)
from repro.runner import cache as cache_module
from repro.runner.cache import configure_layer_memo
from repro.workloads.registry import all_workloads

#: DRAM bandwidth values swept by the benchmark workload.
BANDWIDTH_VALUES = (8.0, 16.0, 32.0, 64.0, 128.0)

#: Required advantage of the warm-cache sweep over the cold serial sweep.
MIN_WARM_SPEEDUP = 5.0

#: Wall-clock budget for one cold pass over the full six-GAN comparison grid.
#: The analytic core is vectorized; the whole grid is a fraction of a second
#: even on slow CI machines, and this bound keeps it that way.
GAN_GRID_BUDGET_SECONDS = 2.0


def run_sweep(runner: SimulationRunner, models):
    sweep = ParameterSweep(models, runner=runner)
    return sweep.run("dram_bandwidth_bytes_per_cycle", list(BANDWIDTH_VALUES))


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_six_gan_grid_wall_clock(benchmark):
    """One cold pass over the six-GAN x (eyeriss, ganax) comparison grid.

    This is the paper's whole evaluation matrix executed job-by-job with no
    job cache and no layer memo — the analytic core alone must fit the
    budget.  A regression that de-vectorizes an estimator or adds per-layer
    overhead shows up here long before it hurts a real sweep.
    """
    jobs = []
    for model in all_workloads():
        jobs.extend(SimulationJob.comparison_pair(model))

    def grid():
        return [execute_job(job) for job in jobs]

    saved_memo = cache_module._layer_memo
    saved_configured = cache_module._layer_memo_configured
    saved_env = {
        name: os.environ.get(name)
        for name in (cache_module.LAYER_MEMO_ENV, cache_module.LAYER_MEMO_DIR_ENV)
    }
    try:
        configure_layer_memo(enabled=False)
        grid()  # warm the shape-grain lru caches; the budget is on steady state
        results, seconds = benchmark.pedantic(
            lambda: timed(grid), iterations=1, rounds=1
        )
    finally:
        with cache_module._layer_memo_lock:
            cache_module._layer_memo = saved_memo
            cache_module._layer_memo_configured = saved_configured
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value

    assert len(results) == len(jobs)
    assert seconds <= GAN_GRID_BUDGET_SECONDS, (
        f"six-GAN comparison grid took {seconds:.3f}s; "
        f"budget is {GAN_GRID_BUDGET_SECONDS:.1f}s"
    )

    emit(
        format_table(
            ["Grid", "Jobs", "Wall time (ms)", "Budget (ms)"],
            [
                [
                    "6 GANs x (eyeriss, ganax)",
                    len(jobs),
                    1e3 * seconds,
                    1e3 * GAN_GRID_BUDGET_SECONDS,
                ],
            ],
            title="Six-GAN comparison grid wall clock",
            float_format="{:.2f}",
        )
    )


def test_runner_execution_modes(benchmark):
    """Compare cold-serial / pooled / warm-cache sweep wall time."""
    models = all_workloads()

    serial_runner = SimulationRunner(backend=SerialBackend())
    cold_points, cold_seconds = benchmark.pedantic(
        lambda: timed(lambda: run_sweep(serial_runner, models)),
        iterations=1,
        rounds=1,
    )

    with SimulationRunner(backend=ProcessPoolBackend()) as pooled_runner:
        pooled_points, pooled_seconds = timed(
            lambda: run_sweep(pooled_runner, models)
        )

    warm_points, warm_seconds = timed(lambda: run_sweep(serial_runner, models))

    # All three modes must agree exactly.
    for cold, pooled, warm in zip(cold_points, pooled_points, warm_points):
        assert cold.speedups == pooled.speedups == warm.speedups
        assert (
            cold.energy_reductions == pooled.energy_reductions
            == warm.energy_reductions
        )

    # The warm cache answered everything without simulating.
    jobs = 2 * len(models) * len(BANDWIDTH_VALUES)
    assert serial_runner.stats.misses == jobs
    assert serial_runner.stats.hits == jobs

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache sweep only {warm_speedup:.1f}x faster than cold serial; "
        f"expected >= {MIN_WARM_SPEEDUP:.0f}x"
    )

    emit(
        format_table(
            ["Execution mode", "Wall time (ms)", "vs cold serial"],
            [
                ["cold serial", 1e3 * cold_seconds, 1.0],
                ["process pool (cold)", 1e3 * pooled_seconds,
                 cold_seconds / pooled_seconds],
                ["warm cache", 1e3 * warm_seconds, warm_speedup],
            ],
            title=f"Runner modes: {jobs}-job DRAM-bandwidth sweep (6 GANs)",
            float_format="{:.2f}",
        )
    )
