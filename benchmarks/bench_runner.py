"""Benchmark of the simulation runner's execution modes.

Runs the same ablation-sized parameter sweep (all six GANs x a DRAM-bandwidth
sweep, both accelerators) three ways and compares wall time:

* **cold serial** — fresh runner, serial backend, empty cache;
* **pooled** — fresh runner, process-pool backend, empty cache (worker
  start-up is included, so on small grids or few cores this can be slower
  than serial — the mode exists for large grids, the benchmark just reports);
* **warm cache** — the serial runner again, cache already populated.

The warm-cache path must be at least 5x faster than the cold serial path —
that is the runner subsystem's reason to exist — and all three must produce
identical sweep points (the same parity the unit tests assert, checked here
on the benchmark workload itself).
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.analysis.sweep import ParameterSweep
from repro.runner import ProcessPoolBackend, SerialBackend, SimulationRunner
from repro.workloads.registry import all_workloads

#: DRAM bandwidth values swept by the benchmark workload.
BANDWIDTH_VALUES = (8.0, 16.0, 32.0, 64.0, 128.0)

#: Required advantage of the warm-cache sweep over the cold serial sweep.
MIN_WARM_SPEEDUP = 5.0


def run_sweep(runner: SimulationRunner, models):
    sweep = ParameterSweep(models, runner=runner)
    return sweep.run("dram_bandwidth_bytes_per_cycle", list(BANDWIDTH_VALUES))


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_runner_execution_modes(benchmark):
    """Compare cold-serial / pooled / warm-cache sweep wall time."""
    models = all_workloads()

    serial_runner = SimulationRunner(backend=SerialBackend())
    cold_points, cold_seconds = benchmark.pedantic(
        lambda: timed(lambda: run_sweep(serial_runner, models)),
        iterations=1,
        rounds=1,
    )

    with SimulationRunner(backend=ProcessPoolBackend()) as pooled_runner:
        pooled_points, pooled_seconds = timed(
            lambda: run_sweep(pooled_runner, models)
        )

    warm_points, warm_seconds = timed(lambda: run_sweep(serial_runner, models))

    # All three modes must agree exactly.
    for cold, pooled, warm in zip(cold_points, pooled_points, warm_points):
        assert cold.speedups == pooled.speedups == warm.speedups
        assert (
            cold.energy_reductions == pooled.energy_reductions
            == warm.energy_reductions
        )

    # The warm cache answered everything without simulating.
    jobs = 2 * len(models) * len(BANDWIDTH_VALUES)
    assert serial_runner.stats.misses == jobs
    assert serial_runner.stats.hits == jobs

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm cache sweep only {warm_speedup:.1f}x faster than cold serial; "
        f"expected >= {MIN_WARM_SPEEDUP:.0f}x"
    )

    emit(
        format_table(
            ["Execution mode", "Wall time (ms)", "vs cold serial"],
            [
                ["cold serial", 1e3 * cold_seconds, 1.0],
                ["process pool (cold)", 1e3 * pooled_seconds,
                 cold_seconds / pooled_seconds],
                ["warm cache", 1e3 * warm_seconds, warm_speedup],
            ],
            title=f"Runner modes: {jobs}-job DRAM-bandwidth sweep (6 GANs)",
            float_format="{:.2f}",
        )
    )
