"""Benchmark of the design-choice ablations (dispatch overhead, DRAM roofline,
achievable utilization) described in DESIGN.md."""

from __future__ import annotations

from conftest import emit

from repro.experiments import ablation


def test_ablation_design_choices(benchmark, context):
    """Run all ablation sweeps and check their qualitative behaviour."""
    result = benchmark.pedantic(ablation.run, args=(context,), iterations=1, rounds=1)
    dispatch = result.data["dispatch_overhead"]
    bandwidth = result.data["dram_bandwidth"]
    utilization = result.data["utilization_cap"]

    # Larger MIMD dispatch overheads (no decoupled access-execute) erode the
    # speedup; the decoupled design (1 cycle) must be the best point.
    speedups = [v["geomean_speedup"] for v in dispatch.values()]
    assert speedups[0] == max(speedups)
    assert speedups[-1] < speedups[0]

    # Shrinking DRAM bandwidth can only reduce (or preserve) the advantage.
    bandwidth_speedups = [v["geomean_speedup"] for v in bandwidth.values()]
    assert bandwidth_speedups == sorted(bandwidth_speedups)

    # Higher achievable utilization (better dataflow packing) helps.
    utilization_speedups = list(utilization.values())
    assert utilization_speedups == sorted(utilization_speedups)
    emit(result.report)
