"""Benchmark of the streaming scheduler's overhead vs the batch path.

Runs the six-GAN (eyeriss, ganax) comparison grid two ways on fresh serial
runners and compares wall time:

* **batch** — ``run_jobs()``, the blocking wrapper (the pre-streaming API);
* **streaming** — ``submit()`` + draining ``as_completed()``, with an event
  listener attached (the worst practical case: every job also narrates its
  life cycle).

Streaming buys incremental results, typed events and cancellation; it must
not tax the common case for it.  The contract enforced here: the streaming
path stays within **10%** of the batch path's wall time on the six-GAN grid
(both measured best-of-N to shave scheduler noise), produces byte-identical
results, and a warm streaming submission resolves entirely from cache
without touching the backend.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.analysis.report import format_table
from repro.runner import SerialBackend, SimulationJob, SimulationRunner
from repro.workloads.registry import all_workloads

#: Maximum tolerated streaming wall time, as a fraction of the batch path.
MAX_STREAMING_OVERHEAD = 1.10

#: Timing repetitions; the best run is compared to shave scheduler noise.
ROUNDS = 3


def grid_jobs():
    return [
        job
        for model in all_workloads()
        for job in SimulationJob.comparison_pair(model)
    ]


def timed_best(fn, rounds=ROUNDS):
    best_result, best_seconds = None, float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        seconds = time.perf_counter() - start
        if seconds < best_seconds:
            best_result, best_seconds = result, seconds
    return best_result, best_seconds


def run_batch():
    runner = SimulationRunner(backend=SerialBackend())
    return runner.run_jobs(grid_jobs())


def run_streaming():
    events = []
    runner = SimulationRunner(backend=SerialBackend())
    handle = runner.submit(grid_jobs(), on_event=events.append)
    results = [None] * len(handle)
    for completion in handle.as_completed():
        results[completion.index] = completion.result
    assert len(events) >= 2 * len(handle)  # scheduled + terminal per job
    return results


def test_streaming_overhead_within_budget(benchmark):
    """Streaming submit/as_completed must stay within 10% of run_jobs."""
    batch_results, batch_seconds = benchmark.pedantic(
        lambda: timed_best(run_batch), iterations=1, rounds=1
    )
    streaming_results, streaming_seconds = timed_best(run_streaming)

    # Identical values: streaming is a consumption strategy, not a new path.
    assert streaming_results == batch_results

    overhead = streaming_seconds / batch_seconds if batch_seconds > 0 else 1.0
    assert overhead <= MAX_STREAMING_OVERHEAD, (
        f"streaming took {overhead:.2f}x the batch path; "
        f"budget is {MAX_STREAMING_OVERHEAD:.2f}x"
    )

    # A warm streaming submission answers everything at submit time.
    warm_runner = SimulationRunner(backend=SerialBackend())
    warm_runner.run_jobs(grid_jobs())
    warm_handle = warm_runner.submit(grid_jobs())
    assert warm_handle.done()
    assert warm_handle.counts()["cache-hit"] == len(set(
        job.cache_key for job in grid_jobs()
    ))

    jobs = len(grid_jobs())
    emit(
        format_table(
            ["Path", "Wall time (ms)", "vs batch"],
            [
                ["batch run_jobs", 1e3 * batch_seconds, 1.0],
                ["streaming as_completed", 1e3 * streaming_seconds, overhead],
            ],
            title=f"Streaming overhead: {jobs}-job six-GAN grid (serial)",
            float_format="{:.2f}",
        )
    )
