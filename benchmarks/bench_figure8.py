"""Benchmark / regeneration of Figure 8: speedup and energy reduction."""

from __future__ import annotations

from conftest import emit

from repro.experiments import figure8
from repro.experiments.paper_data import MODEL_ORDER


def test_figure8_speedup_and_energy(benchmark, context):
    """Regenerate both Figure 8 panels and time the full dual-simulator run."""
    result = benchmark(figure8.run, context)
    speedups = result.data["speedup"]
    reductions = result.data["energy_reduction"]

    # Shape checks against the paper: every GAN benefits, 3D-GAN benefits the
    # most, MAGAN the least, and the geomeans land in the paper's ballpark
    # (paper: 3.6x speedup, 3.1x energy reduction).
    for model in MODEL_ORDER:
        assert speedups[model] > 1.0
        assert reductions[model] > 1.0
    per_model = {k: v for k, v in speedups.items() if k in MODEL_ORDER}
    assert max(per_model, key=per_model.get) == "3D-GAN"
    assert min(per_model, key=per_model.get) == "MAGAN"
    assert 2.0 <= speedups["Geomean"] <= 6.0
    assert 1.5 <= reductions["Geomean"] <= 5.0
    emit(result.report)
