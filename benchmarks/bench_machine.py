"""Cycle-level machine benchmarks: GANAX dataflow vs the dense dataflow.

These benchmarks execute the paper's running example (4x4 input, 5x5 filter,
stride 2) on the cycle-level machine with and without zero skipping, verifying
the functional result against NumPy and measuring the simulation cost.  The
PE-level operation counts quantify the microarchitectural benefit of the
reorganized dataflow independent of the analytical model.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import emit

from repro.analysis.report import format_key_values
from repro.core.compiler import GanaxLayerExecutor
from repro.nn.functional import transposed_conv2d

_RNG = np.random.default_rng(2018)
_X = _RNG.standard_normal((4, 4))
_W = _RNG.standard_normal((5, 5))
_REFERENCE = transposed_conv2d(_X[None], _W[None, None], stride=2, padding=2)[0]


def _run_ganax():
    executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=4, skip_zeros=True)
    return executor.run_transposed_conv(_X, _W, stride=2, padding=2)


def _run_dense():
    executor = GanaxLayerExecutor(num_pvs=2, pes_per_pv=5, skip_zeros=False)
    return executor.run_transposed_conv(_X, _W, stride=2, padding=2)


def test_machine_ganax_dataflow(benchmark):
    """Cycle-level execution with zero skipping and row reorganization."""
    result = benchmark(_run_ganax)
    np.testing.assert_allclose(result.output, _REFERENCE, atol=1e-9)


def test_machine_dense_dataflow(benchmark):
    """Cycle-level execution of the conventional dense dataflow."""
    result = benchmark(_run_dense)
    np.testing.assert_allclose(result.output, _REFERENCE, atol=1e-9)


def test_machine_zero_skipping_ratio(benchmark):
    """Measure the PE-operation reduction of the GANAX dataflow."""

    def compare():
        ganax = _run_ganax()
        dense = _run_dense()
        return ganax, dense

    ganax, dense = benchmark.pedantic(compare, iterations=1, rounds=1)
    ratio = dense.executed_pe_uops / ganax.executed_pe_uops
    assert ratio > 1.5  # the example's inconsequential fraction is ~55-75%
    emit(
        format_key_values(
            "Cycle-level machine: dense vs GANAX dataflow (paper running example)",
            {
                "GANAX PE µops": ganax.executed_pe_uops,
                "Dense PE µops": dense.executed_pe_uops,
                "PE-operation reduction": f"{ratio:.2f}x",
                "GANAX machine cycles": ganax.cycles,
                "Dense machine cycles": dense.cycles,
            },
        )
    )
