"""Schedule-layer benchmarks: grid verification cost and tuned-schedule wins.

Two contracts ride along with the timing numbers:

* **staticcheck-clean grid** — every registered schedule lowers the full
  workload grid with zero verifier findings (the verify-then-simulate
  contract holds for the whole registry, not just the probe layers);
* **a tuned schedule beats default** — the registered ``hoisted`` schedule
  emits measurably fewer µops than ``default`` on a pinned layer (DCGAN
  tconv1), quantifying what the schedule search dimension can buy.
"""

from __future__ import annotations

from conftest import emit

from repro.analysis.report import format_key_values
from repro.core.compiler import compile_layer_programs
from repro.schedule import schedule_names, verify_schedule
from repro.staticcheck import run_check_grid
from repro.workloads.registry import get_workload

_PINNED_WORKLOAD = "dcgan"
_PINNED_LAYER = "tconv1"


def _pinned_binding():
    model = get_workload(_PINNED_WORKLOAD)
    for binding in model.generator.bindings:
        if binding.name == _PINNED_LAYER:
            return binding
    raise AssertionError(f"no {_PINNED_WORKLOAD} layer named {_PINNED_LAYER}")


def _total_uops(schedule: str) -> int:
    programs = compile_layer_programs(
        _pinned_binding(),
        num_pvs=16,
        pes_per_pv=16,
        skip_zeros=True,
        max_waves=1,
        schedule=schedule,
    )
    return sum(len(p.global_uops) for p in programs)


def _check_all_schedules():
    return {
        name: run_check_grid(schedule=name, max_columns=4)
        for name in schedule_names()
    }


def test_schedule_grid_staticcheck_clean(benchmark):
    """Every registered schedule: full grid compiles and verifies clean."""
    reports = benchmark.pedantic(
        _check_all_schedules, iterations=1, rounds=1
    )
    assert set(reports) == set(schedule_names())
    for name, report in reports.items():
        assert report.ok, f"schedule '{name}' has verifier findings"
        assert len(report.findings) == 0
        assert report.programs > 0
    emit(
        format_key_values(
            "Staticcheck grid (programs verified, zero findings)",
            {name: report.programs for name, report in reports.items()},
        )
    )


def test_verify_gate_is_cheap_when_warm(benchmark):
    """The DSE feasibility gate amortises to a cache probe per schedule."""
    from repro.schedule import clear_feasibility_cache

    clear_feasibility_cache()
    for name in schedule_names():  # warm the per-fingerprint cache
        assert verify_schedule(name, num_pvs=16, pes_per_pv=16)

    def probe_all():
        return [
            verify_schedule(name, num_pvs=16, pes_per_pv=16)
            for name in schedule_names()
        ]

    results = benchmark(probe_all)
    assert all(results)


def test_tuned_schedule_beats_default(benchmark):
    """`hoisted` must emit measurably fewer µops than `default` on the
    pinned layer — the headline win of the schedule dimension."""
    counts = benchmark.pedantic(
        lambda: {name: _total_uops(name) for name in ("default", "hoisted")},
        iterations=1,
        rounds=1,
    )
    # "measurably" = a double-digit percentage, not emission noise
    assert counts["hoisted"] < counts["default"] * 0.9
    saved = 1.0 - counts["hoisted"] / counts["default"]
    emit(
        format_key_values(
            f"µops on {_PINNED_WORKLOAD}/{_PINNED_LAYER} (one wave)",
            {
                "default": counts["default"],
                "hoisted": counts["hoisted"],
                "saved": f"{saved:.1%}",
            },
        )
    )
