"""Benchmark / regeneration of Table III: area breakdown and GANAX overhead."""

from __future__ import annotations

import pytest
from conftest import emit

from repro.experiments import table3


def test_table3_area_breakdown(benchmark, context):
    """Regenerate Table III; the total area and ~7.8% overhead must reproduce."""
    result = benchmark(table3.run, context)
    assert result.data["ganax_total_area_um2"] == pytest.approx(
        result.paper_reference["ganax_total_area_um2"], rel=0.01
    )
    assert 0.05 <= result.data["area_overhead_fraction"] <= 0.11
    emit(result.report)
